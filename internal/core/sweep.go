package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/rtree"
)

// This file implements the plane-sweep leaf scan (Options.LeafScanSweep),
// replacing the brute all-pairs CP3 with the band technique of the planar
// closest-pair literature. Both leaves' entries are sorted by ascending low
// x coordinate into reusable scratch buffers and merge-walked: the entry
// with the smaller low x becomes the anchor and scans forward through the
// other leaf's entries, stopping at the first entry whose x gap alone puts
// the pair beyond the pruning bound T. The gap to later entries is at least
// as large (the lists are sorted by low x and the anchor's low x is the
// smallest still unconsumed), so the break is safe, and every pair within T
// is evaluated exactly once — when the first-consumed of its two entries is
// the anchor. T = min(extBound, K-heap threshold) only ever tightens, so
// the sweep evaluates a subset of the brute scan's pairs yet the K-heap
// ends up with the same result set.

// sweepScratch carries one leaf scan's sorted entry copies. A sync.Pool
// keeps one scratch per P in steady state, so the parallel HEAP workers do
// not contend on shared buffers and the per-scan allocation cost vanishes
// after warm-up.
type sweepScratch struct {
	a, b entriesByMinX
}

var sweepPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// entriesByMinX sorts leaf entries by ascending low x coordinate. The sort
// methods live on the pointer type so sort.Sort receives a pointer to a
// pool-owned slice header and no per-call allocation occurs.
type entriesByMinX []rtree.Entry

func (s *entriesByMinX) fill(entries []rtree.Entry) {
	*s = append((*s)[:0], entries...)
}

func (s *entriesByMinX) Len() int { return len(*s) }

func (s *entriesByMinX) Less(i, t int) bool { return (*s)[i].Rect.Min.X < (*s)[t].Rect.Min.X }

func (s *entriesByMinX) Swap(i, t int) { (*s)[i], (*s)[t] = (*s)[t], (*s)[i] }

// scanLeavesSweep is the plane-sweep CP3. It evaluates only pairs whose x
// distance is within T at the time the pair is reached, counts exactly the
// pairs evaluated in Stats.PointPairsCompared, and returns the smallest
// distance (squared) the heap accepted (+Inf if none), like the brute scan.
func (j *join) scanLeavesSweep(na, nb *rtree.Node, kh *kHeap, extBound float64) float64 {
	sc := sweepPool.Get().(*sweepScratch)
	sc.a.fill(na.Entries)
	sc.b.fill(nb.Entries)
	sort.Sort(&sc.a)
	sort.Sort(&sc.b)
	as, bs := sc.a, sc.b

	// T is re-derived from the heap whenever a pair is accepted: the sweep
	// itself tightens the threshold it prunes with.
	T := extBound
	if th := kh.threshold(); th < T {
		T = th
	}
	minAccepted := math.Inf(1)
	var compared int64
	i, t := 0, 0
	for i < len(as) && t < len(bs) {
		// The side with the smaller low x is the anchor; it scans forward
		// through the other side's unconsumed entries.
		anchorIsA := as[i].Rect.Min.X <= bs[t].Rect.Min.X
		var anchor *rtree.Entry
		var others []rtree.Entry
		if anchorIsA {
			anchor, others = &as[i], bs[t:]
			i++
		} else {
			anchor, others = &bs[t], as[i:]
			t++
		}
		for u := range others {
			other := &others[u]
			// Entries ahead of the anchor are sorted by low x, so the gap
			// beyond the anchor's MBR grows monotonically: the first
			// violation ends the band.
			if gap := other.Rect.Min.X - anchor.Rect.Max.X; gap > 0 && j.metric.DistToKey(gap) > T {
				break
			}
			compared++
			d := j.metric.MinMinKey(anchor.Rect, other.Rect) // symmetric
			if !kh.wouldAccept(d) {
				continue
			}
			ea, eb := anchor, other
			if !anchorIsA {
				ea, eb = other, anchor
			}
			kh.offer(kPair{
				distSq: d,
				p:      [2]float64{ea.Rect.Min.X, ea.Rect.Min.Y},
				q:      [2]float64{eb.Rect.Min.X, eb.Rect.Min.Y},
				refP:   ea.Ref,
				refQ:   eb.Ref,
			})
			if d < minAccepted {
				minAccepted = d
			}
			if th := kh.threshold(); th < T {
				T = th
			}
		}
	}
	j.stats.pointPairsCompared.Add(compared)
	j.traceSweepPruned(int64(len(na.Entries)*len(nb.Entries)) - compared)
	sweepPool.Put(sc)
	return minAccepted
}

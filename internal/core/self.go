package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// SelfKClosestPairs answers the self-CPQ of the paper's future-work
// section (Section 6): both data sets are the same entity (P ≡ Q), and the
// result is the K closest unordered pairs of distinct points of one tree.
//
// The traversal is the iterative Heap algorithm over unordered node pairs:
// a pair (N, N) expands to child pairs (c_i, c_j) with i <= j, and a pair
// of distinct nodes to all child combinations, so every unordered point
// pair is considered exactly once. A self join is by definition fully
// overlapping, the regime where the paper found HEAP strongest.
//
// SelfKClosestPairs is the non-cancellable shim over
// SelfKClosestPairsContext.
func SelfKClosestPairs(t *rtree.Tree, k int, opts Options) ([]Pair, Stats, error) {
	return SelfKClosestPairsContext(context.Background(), t, k, opts)
}

// SelfKClosestPairsContext is SelfKClosestPairs under a context; see
// KClosestPairsContext for the cancellation contract.
func SelfKClosestPairsContext(ctx context.Context, t *rtree.Tree, k int, opts Options) ([]Pair, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if t.Len() < 2 {
		return nil, Stats{}, errors.New("core: self closest pair query needs at least two points")
	}
	start := t.Pool().Stats()
	s := &selfJoin{
		t:      t,
		k:      k,
		kheap:  newKHeap(k),
		bound:  math.Inf(1),
		opts:   opts,
		m:      float64(t.Config().MinEntries),
		metric: opts.Metric,
	}
	rootRect, err := t.Bounds()
	if err != nil {
		return nil, Stats{}, err
	}
	s.rootArea = rootRect.Area()
	if err := s.run(ctx, rootRect); err != nil {
		return nil, Stats{}, err
	}
	s.stats.IOP = t.Pool().Stats().Sub(start)
	return s.results(), s.stats, nil
}

// SelfClosestPair returns the single closest pair of distinct points
// within one tree.
//
// SelfClosestPair is the non-cancellable shim over SelfClosestPairContext.
func SelfClosestPair(t *rtree.Tree, opts Options) (Pair, Stats, error) {
	return SelfClosestPairContext(context.Background(), t, opts)
}

// SelfClosestPairContext is SelfClosestPair under a context; see
// KClosestPairsContext for the cancellation contract.
func SelfClosestPairContext(ctx context.Context, t *rtree.Tree, opts Options) (Pair, Stats, error) {
	pairs, stats, err := SelfKClosestPairsContext(ctx, t, 1, opts)
	if err != nil {
		return Pair{}, stats, err
	}
	return pairs[0], stats, nil
}

type selfJoin struct {
	t        *rtree.Tree
	k        int
	kheap    *kHeap
	bound    float64
	opts     Options
	stats    Stats
	rootArea float64
	m        float64
	metric   geom.Metric
	cancel   cancelGate
}

func (s *selfJoin) T() float64 { return math.Min(s.kheap.threshold(), s.bound) }

func (s *selfJoin) run(ctx context.Context, rootRect geom.Rect) error {
	h := &pairHeap{}
	h.push(nodePair{
		a: s.t.RootID(), b: s.t.RootID(),
		ra: rootRect, rb: rootRect,
		la: s.t.Height() - 1, lb: s.t.Height() - 1,
	})
	for h.Len() > 0 {
		if err := s.cancel.poll(ctx); err != nil {
			return err
		}
		if h.Len() > s.stats.MaxQueueSize {
			s.stats.MaxQueueSize = h.Len()
		}
		p := h.pop()
		if p.minminSq > s.T() {
			break
		}
		if err := s.process(p, h); err != nil {
			return err
		}
	}
	return nil
}

func (s *selfJoin) process(p nodePair, h *pairHeap) error {
	na, err := s.t.ReadNode(p.a)
	if err != nil {
		return err
	}
	var nb *rtree.Node
	if p.b == p.a {
		nb = na
	} else {
		nb, err = s.t.ReadNode(p.b)
		if err != nil {
			return err
		}
	}
	s.stats.NodePairsProcessed++

	if na.IsLeaf() {
		s.scan(na, nb)
		return nil
	}

	// Generate unordered sub-pairs.
	var subs []nodePair
	if p.a == p.b {
		for i := range na.Entries {
			for t := i; t < len(na.Entries); t++ {
				subs = append(subs, s.subPair(na.Entries[i], na.Entries[t], na.Level-1))
			}
		}
	} else {
		for i := range na.Entries {
			for t := range nb.Entries {
				subs = append(subs, s.subPair(na.Entries[i], nb.Entries[t], na.Level-1))
			}
		}
	}
	s.stats.SubPairsGenerated += int64(len(subs))
	s.tighten(subs)
	T := s.T()
	for _, sp := range subs {
		if sp.minminSq > T {
			s.stats.SubPairsPruned++
			continue
		}
		h.push(sp)
	}
	return nil
}

func (s *selfJoin) subPair(ea, eb rtree.Entry, level int) nodePair {
	sp := nodePair{
		a: ea.Child(), b: eb.Child(),
		ra: ea.Rect, rb: eb.Rect,
		la: level, lb: level,
		minminSq: s.metric.MinMinKey(ea.Rect, eb.Rect),
	}
	if s.opts.Tie != TieNone {
		sp.tieKey = tieKeyFor(s.opts.Tie, s.metric, sp.ra, sp.rb, s.rootArea, s.rootArea)
	}
	return sp
}

// tighten lowers the pruning bound. For K = 1 only pairs of distinct nodes
// may apply Inequality 2 (for an identical pair the guaranteed point pair
// could be a single point against itself). For K > 1 the MAXMAXDIST prefix
// rule counts unordered pairs: n*(n-1)/2 within an identical pair.
func (s *selfJoin) tighten(subs []nodePair) {
	if s.k == 1 {
		for i := range subs {
			if subs[i].a == subs[i].b {
				continue
			}
			if mm := s.metric.MinMaxKey(subs[i].ra, subs[i].rb); mm < s.bound {
				s.bound = mm
			}
		}
		return
	}
	if s.opts.KPrune != KPruneMaxMax {
		return
	}
	type mc struct {
		maxmaxSq float64
		count    float64
	}
	mcs := make([]mc, 0, len(subs))
	for i := range subs {
		pts := math.Pow(s.m, float64(subs[i].la+1))
		var count float64
		if subs[i].a == subs[i].b {
			count = pts * (pts - 1) / 2
		} else {
			count = pts * pts
		}
		mcs = append(mcs, mc{maxmaxSq: s.metric.MaxMaxKey(subs[i].ra, subs[i].rb), count: count})
	}
	sort.Slice(mcs, func(x, y int) bool { return mcs[x].maxmaxSq < mcs[y].maxmaxSq })
	var cum float64
	for i := range mcs {
		cum += mcs[i].count
		if cum >= float64(s.k) {
			if mcs[i].maxmaxSq < s.bound {
				s.bound = mcs[i].maxmaxSq
			}
			return
		}
	}
}

// scan evaluates the point pairs of a leaf pair: the upper triangle for an
// identical pair, the full cross product for distinct leaves.
func (s *selfJoin) scan(na, nb *rtree.Node) {
	if na.ID == nb.ID {
		for i := range na.Entries {
			for t := i + 1; t < len(na.Entries); t++ {
				s.offer(&na.Entries[i], &na.Entries[t])
			}
		}
		return
	}
	for i := range na.Entries {
		for t := range nb.Entries {
			s.offer(&na.Entries[i], &nb.Entries[t])
		}
	}
}

func (s *selfJoin) offer(ea, eb *rtree.Entry) {
	s.stats.PointPairsCompared++
	// Normalize pair order by ref so results are deterministic.
	if ea.Ref > eb.Ref {
		ea, eb = eb, ea
	}
	s.kheap.offer(kPair{
		distSq: s.metric.MinMinKey(ea.Rect, eb.Rect),
		p:      [2]float64{ea.Rect.Min.X, ea.Rect.Min.Y},
		q:      [2]float64{eb.Rect.Min.X, eb.Rect.Min.Y},
		refP:   ea.Ref,
		refQ:   eb.Ref,
	})
}

func (s *selfJoin) results() []Pair {
	ks := s.kheap.sorted()
	out := make([]Pair, len(ks))
	for i, kp := range ks {
		out[i] = Pair{
			P:    geom.Point{X: kp.p[0], Y: kp.p[1]},
			Q:    geom.Point{X: kp.q[0], Y: kp.q[1]},
			RefP: kp.refP,
			RefQ: kp.refQ,
			Dist: s.metric.KeyToDist(kp.distSq),
		}
	}
	return out
}

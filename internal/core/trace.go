package core

import (
	"repro/internal/obs"
)

// This file holds every tracer emission helper of the query engine. The
// discipline (enforced by the cpqlint obshooks check) is that hot-path
// code never calls a Span or Tracer method outside a nil guard: each
// helper begins with `if j.span == nil { return }`, so a query without a
// tracer pays one pointer comparison per potential event and allocates
// nothing — verified by the zero-alloc test in obs_test.go.
//
// All bound values travel as metric keys (squared distances under L2),
// never through KeyToDist: the helpers run inside the traversal, where
// the sqrtfree check bans math.Sqrt. Consumers convert at the edge.

// traceNodeExpanded emits EvNodeExpanded for one processed node pair
// (levels of both sides, MINMINDIST key).
func (j *join) traceNodeExpanded(p nodePair) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{
		Kind:   obs.EvNodeExpanded,
		Level:  int32(p.la),
		Level2: int32(p.lb),
		New:    p.minminSq,
	})
}

// boundSource names the rule behind an auxiliary-bound update: MINMAXDIST
// (Inequality 2) for K = 1, the MAXMAXDIST prefix rule otherwise.
func (j *join) boundSource() obs.BoundSource {
	if j.k == 1 {
		return obs.SourceMinMax
	}
	return obs.SourceMaxMax
}

// traceBound emits EvBoundTightened when the sequential effective bound
// T = min(aux bound, K-heap threshold) strictly decreased since the last
// emission. Sequential only: j.lastT is unsynchronized.
func (j *join) traceBound(src obs.BoundSource) {
	if j.span == nil {
		return
	}
	if t := j.T(); t < j.lastT {
		j.span.Emit(obs.Event{Kind: obs.EvBoundTightened, Old: j.lastT, New: t, Source: src})
		j.lastT = t
	}
}

// traceBoundValue emits EvBoundTightened for an explicit old → new
// transition — the parallel engine's successful CAS tightenings, where
// the atomic itself reports the displaced value.
func (j *join) traceBoundValue(old, to float64, src obs.BoundSource) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvBoundTightened, Old: old, New: to, Source: src})
}

// traceHighWater emits EvHeapHighWater after the pair heap (or parallel
// frontier) reached a new maximum length n.
func (j *join) traceHighWater(n int) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvHeapHighWater, N: int64(n)})
}

// traceSweepPruned emits EvLeafSweepPruned for one plane-sweep leaf scan;
// skipped is the number of point pairs the sweep never evaluated relative
// to the brute all-pairs scan.
func (j *join) traceSweepPruned(skipped int64) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvLeafSweepPruned, N: skipped})
}

// traceGridPruned emits EvLeafGridPruned for one grid-hash leaf scan;
// skipped is the number of point pairs the grid never evaluated relative
// to the brute all-pairs scan.
func (j *join) traceGridPruned(skipped int64) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvLeafGridPruned, N: skipped})
}

// traceGridRebucket emits EvGridRebucket after a δ-hysteresis rebuild of
// the grid leaf scan's cells; n is the number of re-hashed entries.
func (j *join) traceGridRebucket(n int) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvGridRebucket, N: int64(n)})
}

// traceHeapBatch emits EvHeapBatch after a batched dequeue of the pair
// heap popped n node pairs in one heap operation.
func (j *join) traceHeapBatch(n int) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvHeapBatch, N: int64(n)})
}

// traceWorkerSteal emits EvWorkerSteal after a parallel worker claimed a
// batch of n node pairs from the shared frontier.
func (j *join) traceWorkerSteal(worker int32, n int) {
	if j.span == nil {
		return
	}
	j.span.Emit(obs.Event{Kind: obs.EvWorkerSteal, Worker: worker, N: int64(n)})
}

// traceQueryEnd closes the span with the final effective bound and the
// result count (or the error).
func (j *join) traceQueryEnd(results int, err error) {
	if j.span == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	j.span.End(j.T(), results, msg)
}

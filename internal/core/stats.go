package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/storage"
)

// Stats reports the cost of one closest-pair query. Disk accesses (buffer
// misses) are the paper's cost metric; the remaining counters expose the
// algorithms' internal work for analysis and tests.
type Stats struct {
	// IOP and IOQ are the storage counter deltas of the two trees' buffer
	// pools over the query (the P-tree and Q-tree of the join).
	IOP, IOQ storage.IOStats
	// NodePairsProcessed counts node pairs expanded (recursive calls or
	// heap pops that read two nodes).
	NodePairsProcessed int64
	// SubPairsGenerated counts candidate sub-pairs produced during
	// expansion, before pruning.
	SubPairsGenerated int64
	// SubPairsPruned counts candidate sub-pairs discarded by the
	// MINMINDIST > T test.
	SubPairsPruned int64
	// PointPairsCompared counts point-to-point distance evaluations at
	// the leaf level.
	PointPairsCompared int64
	// MaxQueueSize is the high-water mark of the HEAP algorithm's pair
	// heap (0 for the recursive algorithms).
	MaxQueueSize int
	// GridCellsProbed counts grid-cell lookups performed by the grid-hash
	// leaf scan (LeafScanGrid); 0 under the other scans.
	GridCellsProbed int64
	// GridRebuckets counts δ-hysteresis grid rebuilds: the pruning bound
	// shrank enough mid-scan that the cells were re-hashed with a smaller
	// side.
	GridRebuckets int64
	// HeapBatches and HeapBatchPairs count the batched dequeues of the
	// HEAP pair heap and the node pairs they carried (Options.BatchExpand
	// and the parallel engine's worker steals; both zero for the strict
	// sequential order).
	HeapBatches, HeapBatchPairs int64
	// NodeCacheHits and NodeCacheMisses are the decoded-node cache lookup
	// deltas of both trees over the query (both zero when no cache is
	// attached, the default). A hit serves a node without touching the
	// buffer pool, so it appears in neither IOP nor IOQ — the counters are
	// reported separately to keep the paper's disk-access accounting
	// honest.
	NodeCacheHits, NodeCacheMisses int64
}

// Accesses returns the total disk accesses of both trees — the quantity on
// the y-axis of every figure in the paper.
func (s Stats) Accesses() int64 {
	return s.IOP.Reads + s.IOQ.Reads
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"accesses=%d (P=%d Q=%d) nodePairs=%d subPairs=%d pruned=%d pointPairs=%d maxQueue=%d",
		s.Accesses(), s.IOP.Reads, s.IOQ.Reads, s.NodePairsProcessed,
		s.SubPairsGenerated, s.SubPairsPruned, s.PointPairsCompared, s.MaxQueueSize)
	if s.GridCellsProbed > 0 || s.GridRebuckets > 0 {
		out += fmt.Sprintf(" gridProbes=%d rebuckets=%d", s.GridCellsProbed, s.GridRebuckets)
	}
	if s.HeapBatches > 0 {
		out += fmt.Sprintf(" heapBatches=%d (%d pairs)", s.HeapBatches, s.HeapBatchPairs)
	}
	if s.NodeCacheHits > 0 || s.NodeCacheMisses > 0 {
		out += fmt.Sprintf(" nodeCache=%d/%d hitRatio=%.3f",
			s.NodeCacheHits, s.NodeCacheHits+s.NodeCacheMisses, s.NodeCacheHitRatio())
	}
	return out
}

// Merge folds other into s: IO deltas and work counters add element-wise,
// the queue high-water mark takes the maximum. It is the one aggregation
// helper for combining per-shard (or otherwise partial) query stats —
// the shard executor's gather and the facade's per-tree cache-delta fold
// both go through it, so a new Stats field only needs its combination
// rule stated here. Merge operates on snapshots: take them with
// statsAcc.snapshot (or pool/cache Stats diffs) first; the snapshots
// themselves are plain values, so merging needs no atomics.
func (s *Stats) Merge(other Stats) {
	s.IOP = s.IOP.Add(other.IOP)
	s.IOQ = s.IOQ.Add(other.IOQ)
	s.NodePairsProcessed += other.NodePairsProcessed
	s.SubPairsGenerated += other.SubPairsGenerated
	s.SubPairsPruned += other.SubPairsPruned
	s.PointPairsCompared += other.PointPairsCompared
	if other.MaxQueueSize > s.MaxQueueSize {
		s.MaxQueueSize = other.MaxQueueSize
	}
	s.GridCellsProbed += other.GridCellsProbed
	s.GridRebuckets += other.GridRebuckets
	s.HeapBatches += other.HeapBatches
	s.HeapBatchPairs += other.HeapBatchPairs
	s.NodeCacheHits += other.NodeCacheHits
	s.NodeCacheMisses += other.NodeCacheMisses
}

// NodeCacheHitRatio returns hits / lookups of the decoded-node cache over
// the query, 0 when no cache was attached.
func (s Stats) NodeCacheHitRatio() float64 {
	lookups := s.NodeCacheHits + s.NodeCacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.NodeCacheHits) / float64(lookups)
}

// statsAcc accumulates the work counters of one query with atomic
// operations, so both the sequential algorithms and the parallel HEAP
// workers share the same bookkeeping and the race detector stays clean.
// IO deltas are attached when the query finishes (see snapshot callers).
type statsAcc struct {
	nodePairsProcessed atomic.Int64
	subPairsGenerated  atomic.Int64
	subPairsPruned     atomic.Int64
	pointPairsCompared atomic.Int64
	maxQueueSize       atomic.Int64
	gridCellsProbed    atomic.Int64
	gridRebuckets      atomic.Int64
	heapBatches        atomic.Int64
	heapBatchPairs     atomic.Int64
}

// observeQueueLen raises the queue high-water mark (CAS max-update) and
// reports whether n set a new mark — the signal behind EvHeapHighWater.
func (a *statsAcc) observeQueueLen(n int) bool {
	v := int64(n)
	for {
		cur := a.maxQueueSize.Load()
		if v <= cur {
			return false
		}
		if a.maxQueueSize.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// snapshot converts the accumulated counters into the public Stats value.
func (a *statsAcc) snapshot() Stats {
	return Stats{
		NodePairsProcessed: a.nodePairsProcessed.Load(),
		SubPairsGenerated:  a.subPairsGenerated.Load(),
		SubPairsPruned:     a.subPairsPruned.Load(),
		PointPairsCompared: a.pointPairsCompared.Load(),
		MaxQueueSize:       int(a.maxQueueSize.Load()),
		GridCellsProbed:    a.gridCellsProbed.Load(),
		GridRebuckets:      a.gridRebuckets.Load(),
		HeapBatches:        a.heapBatches.Load(),
		HeapBatchPairs:     a.heapBatchPairs.Load(),
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func testMetrics(t *testing.T) []geom.Metric {
	t.Helper()
	l3, err := geom.Lp(3)
	if err != nil {
		t.Fatal(err)
	}
	return []geom.Metric{geom.L2(), geom.L1(), geom.LInf(), l3}
}

// TestAllAlgorithmsUnderAllMetrics: the paper claims the methods adapt to
// any Minkowski metric (Section 2.1); every algorithm must match the
// metric-aware brute force under L1, L2, L3 and L-infinity.
func TestAllAlgorithmsUnderAllMetrics(t *testing.T) {
	ps := uniformPoints(4000, 400, 0)
	qs := uniformPoints(4100, 350, 0.6)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, m := range testMetrics(t) {
		want := BruteForceKCPMetric(ps, qs, 20, m)
		for _, alg := range Algorithms() {
			opts := DefaultOptions(alg)
			opts.Metric = m
			got, _, err := KClosestPairs(ta, tb, 20, opts)
			if err != nil {
				t.Fatalf("%v %v: %v", m, alg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v %v: got %d pairs, want %d", m, alg, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%v %v pair %d: dist %.12g, want %.12g",
						m, alg, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestMetricChangesResults(t *testing.T) {
	// A configuration where L1 and L-infinity must disagree with L2:
	// candidate pairs along the axes vs the diagonal.
	ps := []geom.Point{{X: 0, Y: 0}}
	qs := []geom.Point{{X: 3.0, Y: 3.0}, {X: 4.4, Y: 0}}
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)

	// L2: diagonal point wins (4.24 < 4.4). L1: axis point wins (4.4 < 6).
	l2, _, err := ClosestPair(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Q.Equal(geom.Point{X: 3, Y: 3}) {
		t.Fatalf("L2 winner = %v", l2.Q)
	}
	opts := DefaultOptions(Heap)
	opts.Metric = geom.L1()
	l1, _, err := ClosestPair(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Q.Equal(geom.Point{X: 4.4, Y: 0}) {
		t.Fatalf("L1 winner = %v", l1.Q)
	}
	if math.Abs(l1.Dist-4.4) > 1e-12 {
		t.Fatalf("L1 dist = %g", l1.Dist)
	}
	// L-infinity: diagonal point wins again (3 < 4.4).
	opts.Metric = geom.LInf()
	li, _, err := ClosestPair(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !li.Q.Equal(geom.Point{X: 3, Y: 3}) || math.Abs(li.Dist-3) > 1e-12 {
		t.Fatalf("Linf winner = %v dist %g", li.Q, li.Dist)
	}
}

func TestSelfCPUnderMetrics(t *testing.T) {
	ps := uniformPoints(4200, 300, 0)
	tr := buildTree(t, ps, 256)
	for _, m := range testMetrics(t) {
		opts := DefaultOptions(Heap)
		opts.Metric = m
		got, _, err := SelfKClosestPairs(tr, 10, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Validate against a metric-aware self brute force.
		type pr struct{ d float64 }
		var best []float64
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				best = append(best, m.Dist(ps[i], ps[j]))
			}
		}
		sortFloats(best)
		_ = pr{}
		for i := range got {
			if math.Abs(got[i].Dist-best[i]) > 1e-9 {
				t.Fatalf("%v pair %d: dist %.12g, want %.12g", m, i, got[i].Dist, best[i])
			}
		}
	}
}

func TestSemiCPUnderMetrics(t *testing.T) {
	ps := uniformPoints(4300, 100, 0)
	qs := uniformPoints(4400, 150, 0.3)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, m := range testMetrics(t) {
		opts := DefaultOptions(Heap)
		opts.Metric = m
		got, _, err := SemiClosestPairs(ta, tb, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != len(ps) {
			t.Fatalf("%v: %d pairs", m, len(got))
		}
		for _, pair := range got {
			// The reported neighbor must be the true nearest under m.
			best := math.Inf(1)
			for _, q := range qs {
				if d := m.Dist(ps[pair.RefP], q); d < best {
					best = d
				}
			}
			if math.Abs(pair.Dist-best) > 1e-9 {
				t.Fatalf("%v: ref %d dist %.12g, want %.12g",
					m, pair.RefP, pair.Dist, best)
			}
		}
	}
}

package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
)

func bruteWithin(ps, qs []geom.Point, eps float64, m geom.Metric) []float64 {
	var out []float64
	for _, p := range ps {
		for _, q := range qs {
			if d := m.Dist(p, q); d <= eps {
				out = append(out, d)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func TestWithinDistanceMatchesBruteForce(t *testing.T) {
	ps := uniformPoints(5000, 400, 0)
	qs := uniformPoints(5100, 400, 0.7)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, eps := range []float64{0, 0.005, 0.02, 0.1} {
		var got []float64
		stats, err := WithinDistance(ta, tb, eps, DefaultOptions(Heap), func(p Pair) bool {
			got = append(got, p.Dist)
			return true
		})
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		want := bruteWithin(ps, qs, eps, geom.L2())
		if len(got) != len(want) {
			t.Fatalf("eps=%g: got %d pairs, want %d", eps, len(got), len(want))
		}
		sort.Float64s(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("eps=%g pair %d: dist %.12g, want %.12g", eps, i, got[i], want[i])
			}
		}
		if eps >= 0.02 && stats.Accesses() <= 0 {
			t.Errorf("eps=%g: no accesses recorded", eps)
		}
	}
}

func TestWithinDistanceUnderL1(t *testing.T) {
	ps := uniformPoints(5200, 300, 0)
	qs := uniformPoints(5300, 300, 0.8)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	opts := DefaultOptions(Heap)
	opts.Metric = geom.L1()
	var got []float64
	if _, err := WithinDistance(ta, tb, 0.05, opts, func(p Pair) bool {
		got = append(got, p.Dist)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := bruteWithin(ps, qs, 0.05, geom.L1())
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
}

func TestWithinDistanceEarlyStop(t *testing.T) {
	ps := uniformPoints(5400, 500, 0)
	qs := uniformPoints(5500, 500, 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	count := 0
	if _, err := WithinDistance(ta, tb, 1.0, DefaultOptions(Heap), func(Pair) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("visited %d pairs, want early stop at 10", count)
	}
}

func TestWithinDistanceEdgeCases(t *testing.T) {
	ps := uniformPoints(5600, 10, 0)
	ta := buildTree(t, ps, 256)
	empty := buildTree(t, nil, 256)
	// Empty side: no pairs, no error.
	stats, err := WithinDistance(ta, empty, 1, DefaultOptions(Heap), func(Pair) bool {
		t.Fatal("unexpected pair")
		return true
	})
	if err != nil || stats.Accesses() != 0 {
		t.Fatalf("empty side: stats=%v err=%v", stats, err)
	}
	// Negative eps rejected.
	if _, err := WithinDistance(ta, ta, -1, DefaultOptions(Heap), func(Pair) bool { return true }); err == nil {
		t.Error("negative eps must fail")
	}
	// eps = 0 on identical sets: coincident points only.
	tb := buildTree(t, ps, 256)
	n := 0
	if _, err := WithinDistance(ta, tb, 0, DefaultOptions(Heap), func(p Pair) bool {
		if p.Dist != 0 {
			t.Fatalf("eps=0 returned dist %g", p.Dist)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(ps) {
		t.Fatalf("eps=0 on identical sets found %d pairs, want %d", n, len(ps))
	}
}

func TestWithinDistancePrunes(t *testing.T) {
	// Distant workspaces with a tiny eps must touch almost nothing.
	ps := uniformPoints(5700, 2000, 0)
	qs := uniformPoints(5800, 2000, 5)
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)
	stats, err := WithinDistance(ta, tb, 0.01, DefaultOptions(Heap), func(Pair) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses() > 4 {
		t.Errorf("distant workspaces cost %d accesses, want <= 4 (root pair only)", stats.Accesses())
	}
}

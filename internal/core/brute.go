package core

import (
	"sort"

	"repro/internal/geom"
)

// BruteForceKCP computes the K closest pairs between two in-memory point
// sets by scanning all |P|*|Q| pairs. It is the correctness oracle for the
// test suite and for the verification tooling; refs are the point indices.
func BruteForceKCP(ps, qs []geom.Point, k int) []Pair {
	return BruteForceKCPMetric(ps, qs, k, geom.L2())
}

// BruteForceKCPMetric is BruteForceKCP under an arbitrary Minkowski
// metric.
func BruteForceKCPMetric(ps, qs []geom.Point, k int, m geom.Metric) []Pair {
	if k <= 0 || len(ps) == 0 || len(qs) == 0 {
		return nil
	}
	h := newKHeap(k)
	for i, p := range ps {
		for t, q := range qs {
			h.offer(kPair{
				distSq: m.Key(p, q),
				p:      [2]float64{p.X, p.Y},
				q:      [2]float64{q.X, q.Y},
				refP:   int64(i),
				refQ:   int64(t),
			})
		}
	}
	ks := h.sorted()
	out := make([]Pair, len(ks))
	for i, kp := range ks {
		out[i] = Pair{
			P:    geom.Point{X: kp.p[0], Y: kp.p[1]},
			Q:    geom.Point{X: kp.q[0], Y: kp.q[1]},
			RefP: kp.refP,
			RefQ: kp.refQ,
			Dist: m.KeyToDist(kp.distSq),
		}
	}
	return out
}

// BruteForceSelfKCP computes the K closest pairs within one point set,
// considering each unordered pair of distinct indices once.
func BruteForceSelfKCP(ps []geom.Point, k int) []Pair {
	if k <= 0 || len(ps) < 2 {
		return nil
	}
	h := newKHeap(k)
	for i := 0; i < len(ps); i++ {
		for t := i + 1; t < len(ps); t++ {
			h.offer(kPair{
				distSq: ps[i].DistSq(ps[t]),
				p:      [2]float64{ps[i].X, ps[i].Y},
				q:      [2]float64{ps[t].X, ps[t].Y},
				refP:   int64(i),
				refQ:   int64(t),
			})
		}
	}
	ks := h.sorted()
	out := make([]Pair, len(ks))
	for i, kp := range ks {
		out[i] = Pair{
			P:    geom.Point{X: kp.p[0], Y: kp.p[1]},
			Q:    geom.Point{X: kp.q[0], Y: kp.q[1]},
			RefP: kp.refP,
			RefQ: kp.refQ,
			Dist: geom.Point{X: kp.p[0], Y: kp.p[1]}.Dist(geom.Point{X: kp.q[0], Y: kp.q[1]}),
		}
	}
	return out
}

// BruteForceSemiCP computes the semi-CPQ oracle: for every point of ps,
// its nearest point in qs, sorted by ascending distance.
func BruteForceSemiCP(ps, qs []geom.Point) []Pair {
	if len(ps) == 0 || len(qs) == 0 {
		return nil
	}
	out := make([]Pair, 0, len(ps))
	for i, p := range ps {
		best := 0
		bestD := p.DistSq(qs[0])
		for t := 1; t < len(qs); t++ {
			if d := p.DistSq(qs[t]); d < bestD {
				best, bestD = t, d
			}
		}
		out = append(out, Pair{
			P: p, Q: qs[best],
			RefP: int64(i), RefQ: int64(best),
			Dist: p.Dist(qs[best]),
		})
	}
	sort.Slice(out, func(i, t int) bool {
		if out[i].Dist != out[t].Dist {
			return out[i].Dist < out[t].Dist
		}
		return out[i].RefP < out[t].RefP
	})
	return out
}

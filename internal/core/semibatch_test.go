package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSemiBatchedMatchesBruteForce(t *testing.T) {
	ps := uniformPoints(8000, 300, 0)
	qs := uniformPoints(8100, 400, 0.4)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	got, stats, err := SemiClosestPairsBatched(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForceSemiCP(ps, qs)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	seen := map[int64]bool{}
	for i := range got {
		if seen[got[i].RefP] {
			t.Fatalf("P ref %d appears twice", got[i].RefP)
		}
		seen[got[i].RefP] = true
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
	}
	if stats.Accesses() <= 0 {
		t.Error("no accesses recorded")
	}
}

func TestSemiBatchedAgreesWithPerPoint(t *testing.T) {
	ps := uniformPoints(8200, 500, 0)
	qs := uniformPoints(8300, 500, 0.2)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	perPoint, _, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	batched, _, err := SemiClosestPairsBatched(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if len(perPoint) != len(batched) {
		t.Fatalf("sizes differ: %d vs %d", len(perPoint), len(batched))
	}
	for i := range perPoint {
		if math.Abs(perPoint[i].Dist-batched[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: per-point %.12g vs batched %.12g",
				i, perPoint[i].Dist, batched[i].Dist)
		}
	}
}

func TestSemiBatchedReducesAccesses(t *testing.T) {
	// On larger inputs the batched traversal must cost fewer disk accesses
	// than one NN search per point (the point of the algorithm).
	ps := uniformPoints(8400, 3000, 0)
	qs := uniformPoints(8500, 3000, 0.5)
	ta := buildTree(t, ps, 1024)
	tb := buildTree(t, qs, 1024)
	_, pp, err := SemiClosestPairs(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	_, bt, err := SemiClosestPairsBatched(ta, tb, DefaultOptions(Heap))
	if err != nil {
		t.Fatal(err)
	}
	if bt.Accesses() >= pp.Accesses() {
		t.Errorf("batched %d accesses >= per-point %d", bt.Accesses(), pp.Accesses())
	}
	if bt.Accesses()*2 > pp.Accesses() {
		t.Logf("note: batched %d vs per-point %d (less than 2x saving)",
			bt.Accesses(), pp.Accesses())
	}
}

func TestSemiBatchedUnderMetrics(t *testing.T) {
	ps := uniformPoints(8600, 150, 0)
	qs := uniformPoints(8700, 200, 0.3)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, m := range []geom.Metric{geom.L1(), geom.LInf()} {
		opts := DefaultOptions(Heap)
		opts.Metric = m
		got, _, err := SemiClosestPairsBatched(ta, tb, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, pair := range got {
			best := math.Inf(1)
			for _, q := range qs {
				if d := m.Dist(ps[pair.RefP], q); d < best {
					best = d
				}
			}
			if math.Abs(pair.Dist-best) > 1e-9 {
				t.Fatalf("%v: ref %d dist %.12g, want %.12g", m, pair.RefP, pair.Dist, best)
			}
		}
	}
}

func TestSemiBatchedEmpty(t *testing.T) {
	empty := buildTree(t, nil, 256)
	tr := buildTree(t, uniformPoints(8800, 10, 0), 256)
	if _, _, err := SemiClosestPairsBatched(empty, tr, DefaultOptions(Heap)); err == nil {
		t.Error("empty P must fail")
	}
	if _, _, err := SemiClosestPairsBatched(tr, empty, DefaultOptions(Heap)); err == nil {
		t.Error("empty Q must fail")
	}
}

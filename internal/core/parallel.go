package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file implements the parallel execution mode of the HEAP algorithm
// (Options.Parallelism > 1). The paper's pruning rules CP1-CP5 are
// order-independent once a sound (over-estimating) upper bound T on the
// K-th closest distance is maintained, so node pairs can be processed by
// many workers concurrently:
//
//   - A shared frontier replaces the sequential pair heap: workers pop
//     small batches of the globally best pairs under one lock acquisition
//     and push surviving sub-pairs back in one acquisition, which keeps
//     the best-first order approximately intact while cutting lock
//     traffic by the batch size.
//   - The pruning bound T lives in a single atomic as a squared distance
//     and is only ever lowered (CAS tighten-only). Both sources of the
//     sequential T — the auxiliary MINMAXDIST/MAXMAXDIST bound and the
//     global K-heap threshold — fold into it. A worker may read a stale
//     (larger) T, which can only make it prune less, never incorrectly.
//   - Each worker accumulates leaf results in a local K-heap and merges
//     it into the global K-heap under a single lock, but only when the
//     local heap holds a pair that beats the published bound (or the
//     global heap is not yet full, in which case T is still +Inf from the
//     K-heap's perspective and any accepted pair qualifies).
//
// A pair is discarded only when its MINMINDIST exceeds T, and T is at all
// times an upper bound on the final K-th distance; hence the parallel
// mode returns exactly the same K distances as the sequential algorithms
// (the pair set may be a different valid instance under exact distance
// ties, as the paper already allows). Disk accesses stay exactly counted
// by the pool's atomic counters, but their number may vary slightly from
// run to run because the global processing order depends on scheduling.

// parBatch is the number of node pairs a worker claims per frontier lock
// acquisition. Larger batches cut lock traffic but deviate further from
// strict best-first order (costing some extra node reads).
const parBatch = 8

// parHeap is the shared state of one parallel HEAP run.
type parHeap struct {
	j *join

	// bound is the published pruning bound T (squared), tighten-only.
	bound atomicMinFloat64

	// gmu guards merging worker-local K-heaps into j.kheap.
	gmu sync.Mutex

	// mu guards the frontier heap, the busy-worker count and the first
	// error; cond signals pushed work, errors and idleness.
	mu       sync.Mutex
	cond     sync.Cond
	frontier pairHeap
	busy     int
	err      error

	// timed enables per-batch busy-time accounting (only when the query
	// records metrics; the disabled path takes no timestamps at all).
	timed     bool
	busyNanos atomic.Int64
}

// atomicMinFloat64 is a float64 that can only decrease, stored as ordered
// bits for lock-free CAS. All values used here are non-negative squared
// distances (or +Inf), for which the IEEE-754 bit patterns order like the
// values themselves.
type atomicMinFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicMinFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicMinFloat64) load() float64 { return math.Float64frombits(a.bits.Load()) }

// tighten lowers the value to v if v is smaller (CAS loop; lost races just
// retry against the new, smaller value). It returns the displaced value
// and whether v actually replaced it — the trace layer turns successful
// tightenings into EvBoundTightened events.
func (a *atomicMinFloat64) tighten(v float64) (old float64, ok bool) {
	for {
		bits := a.bits.Load()
		old = math.Float64frombits(bits)
		if v >= old {
			return old, false
		}
		if a.bits.CompareAndSwap(bits, math.Float64bits(v)) {
			return old, true
		}
	}
}

// runHeapParallel drives the HEAP algorithm with the given number of
// workers from the root pair. It fills j.kheap (the global K-heap) and the
// shared atomic counters of j.stats; j.bound and the sequential T() are
// not used.
//
// Cancellation: workers poll ctx.Err() in take (once per claimed batch and
// per condition-variable wake), and a watcher goroutine turns the context
// firing into a fail+broadcast so workers blocked in cond.Wait unwind
// immediately. Everything spawned here is joined before returning — a
// cancelled query leaks no goroutines.
func (j *join) runHeapParallel(ctx context.Context, root nodePair, workers int) error {
	s := &parHeap{j: j, timed: j.opts.Metrics != nil}
	s.cond.L = &s.mu
	s.bound.store(math.Inf(1))
	s.pullShared() // seed from bounds other cooperating joins already found
	if root.minminSq <= s.bound.load() {
		s.frontier.push(root)
		s.j.stats.observeQueueLen(s.frontier.Len())
	}
	var wallStart time.Time
	if s.timed {
		wallStart = time.Now()
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			s.work(ctx, id)
		}(int32(i))
	}
	// The watcher bridges the context's channel to the cond-based frontier:
	// without it a cancellation would only be noticed at the next wake. A
	// Background/TODO context has a nil Done channel and can never fire, so
	// the bridge is skipped entirely on the non-cancellable path. It joins
	// through its own WaitGroup because the stop channel can only close
	// after the workers' wg.Wait has returned.
	var stop chan struct{}
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		stop = make(chan struct{})
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				s.fail(ctx.Err())
			case <-stop:
			}
		}()
	}
	wg.Wait()
	if stop != nil {
		close(stop)
		watcher.Wait()
	}
	if s.timed {
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			util := float64(s.busyNanos.Load()) / 1e9 / (wall * float64(workers))
			if j.opts.Metrics != nil {
				j.opts.Metrics.WorkerUtilization.Observe(util)
			}
		}
	}
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	return err
}

// work is one worker's loop: claim a batch of frontier pairs, process
// them, merge local results when they can improve the global answer.
// Cancellation is observed in take, once per claimed batch, and by a
// worker-local stride-gated poll per processed pair, so a worker deep in
// a large batch still stops promptly without touching shared state.
func (s *parHeap) work(ctx context.Context, id int32) {
	local := newKHeap(s.j.k)
	localMin := math.Inf(1) // best accepted distance since the last merge
	batch := make([]nodePair, 0, parBatch)
	var subs []nodePair // reused expansion output; push copies into the frontier
	var gate cancelGate // worker-local: no contention on the poll counter
	for {
		batch = s.take(ctx, batch[:0])
		if len(batch) == 0 {
			break
		}
		s.j.traceWorkerSteal(id, len(batch))
		var t0 time.Time
		if s.timed {
			t0 = time.Now()
		}
		for _, p := range batch {
			if err := gate.poll(ctx); err != nil {
				s.fail(err)
				break
			}
			// T may have tightened since the pair was queued.
			if p.minminSq > s.bound.load() {
				continue
			}
			if err := s.process(p, local, &localMin, &subs); err != nil {
				s.fail(err)
				break
			}
		}
		if localMin < s.bound.load() {
			// The local heap holds at least one pair that beats the
			// published bound (or the bound is still +Inf): publish.
			s.merge(local)
			localMin = math.Inf(1)
		}
		if s.timed {
			s.busyNanos.Add(time.Since(t0).Nanoseconds())
		}
		s.release()
	}
	// Leftover local results (pairs that never individually beat the
	// published bound can still be part of the final K).
	s.merge(local)
}

// process handles one claimed node pair: read, scan leaves or expand,
// tighten the published bound, push surviving sub-pairs. subs is the
// worker's reusable expansion buffer (push copies into the frontier, so
// reuse across pairs is safe).
func (s *parHeap) process(p nodePair, local *kHeap, localMin *float64, subs *[]nodePair) error {
	j := s.j
	na, nb, err := j.readPair(p)
	if err != nil {
		return err
	}
	if na.IsLeaf() && nb.IsLeaf() {
		if m := j.scanLeavesInto(na, nb, local, s.bound.load()); m < *localMin {
			*localMin = m
		}
		return nil
	}
	var kept []nodePair
	if j.opts.Expand == ExpandLegacy {
		raw, mode := j.computeSubs(p, na, nb)
		if j.tightens() {
			if b := j.boundCandidate(raw, mode, na, nb); !math.IsInf(b, 1) {
				if old, ok := s.bound.tighten(b); ok {
					j.traceBoundValue(old, b, j.boundSource())
					s.pushShared(b)
				}
			}
		}
		T := s.bound.load()
		kept = raw[:0]
		var pruned int64
		for _, sp := range raw {
			if sp.minminSq > T {
				pruned++
				continue
			}
			kept = append(kept, sp)
		}
		if pruned > 0 {
			j.stats.subPairsPruned.Add(pruned)
		}
	} else {
		e := j.beginExpand(p, na, nb)
		if j.tightens() && !math.IsInf(e.bound, 1) {
			if old, ok := s.bound.tighten(e.bound); ok {
				j.traceBoundValue(old, e.bound, j.boundSource())
				s.pushShared(e.bound)
			}
		}
		*subs = e.finish((*subs)[:0], s.bound.load())
		kept = *subs
	}
	if len(kept) > 0 {
		s.push(kept)
	}
	return nil
}

// take claims up to parBatch pairs from the frontier, blocking while the
// frontier is empty but other workers may still produce work. A nil return
// means the run is over (frontier drained and all workers idle, an error
// was recorded, or the context fired). The claimed batch counts the worker
// as busy until release. The ctx.Err poll runs once per batch claim and
// per cond wake — a few loads per ~parBatch node expansions.
func (s *parHeap) take(ctx context.Context, dst []nodePair) []nodePair {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err == nil {
			if err := ctx.Err(); err != nil {
				s.err = err
			}
		}
		if s.err != nil {
			return nil
		}
		if s.frontier.Len() > 0 {
			// CP5, parallel form: T only ever tightens, so if even the
			// best queued pair exceeds T the whole frontier is dead.
			// (Busy workers can still push qualifying pairs afterwards:
			// sub-pair MINMINDISTs grow monotonically down the tree but
			// start from their parent's, not from the frontier top's.)
			// The bound is loaded once so the popBatch limit cannot fall
			// below the top key the dead-frontier check just admitted —
			// the claimed batch is never empty.
			s.pullShared()
			b := s.bound.load()
			if s.frontier.pairs[0].minminSq > b {
				s.frontier.pairs = s.frontier.pairs[:0]
				continue
			}
			dst = s.frontier.popBatch(dst, parBatch, b)
			s.j.stats.heapBatches.Add(1)
			s.j.stats.heapBatchPairs.Add(int64(len(dst)))
			s.busy++
			return dst
		}
		if s.busy == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// push publishes surviving sub-pairs to the frontier and wakes waiting
// workers.
func (s *parHeap) push(pairs []nodePair) {
	s.mu.Lock()
	n := 0
	for _, sp := range pairs {
		s.frontier.push(sp)
	}
	if s.j.stats.observeQueueLen(s.frontier.Len()) {
		n = s.frontier.Len()
	}
	s.mu.Unlock()
	if n > 0 {
		s.j.traceHighWater(n)
	}
	s.cond.Broadcast()
}

// release marks the worker idle after a batch; the last idle worker with
// an empty frontier wakes everyone so they can exit.
func (s *parHeap) release() {
	s.mu.Lock()
	s.busy--
	wake := s.busy == 0 && s.frontier.Len() == 0
	s.mu.Unlock()
	if wake {
		s.cond.Broadcast()
	}
}

// fail records the first error and wakes all workers.
func (s *parHeap) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// merge folds a worker-local K-heap into the global one under the merge
// lock and publishes the (possibly tightened) K-heap threshold.
func (s *parHeap) merge(local *kHeap) {
	if len(local.pairs) == 0 {
		return
	}
	s.gmu.Lock()
	for i := range local.pairs {
		s.j.kheap.offer(local.pairs[i])
	}
	if s.j.kheap.full() {
		th := s.j.kheap.threshold()
		if old, ok := s.bound.tighten(th); ok {
			s.j.traceBoundValue(old, th, obs.SourceMerge)
			s.pushShared(th)
		}
	}
	s.gmu.Unlock()
	local.reset()
}

// pullShared folds the cross-join bound (Options.SharedBound) into the
// published bound, so the frontier purge and the batch limit observe
// tightenings found by other cooperating joins. No-op without one.
func (s *parHeap) pullShared() {
	if sb := s.j.shared; sb != nil {
		s.bound.tighten(sb.Load())
	}
}

// pushShared forwards a successful local tighten to the cross-join
// bound. Only CAS successes need forwarding: a failed local tighten
// means the published bound is already at most the candidate, and every
// published value has been forwarded before.
func (s *parHeap) pushShared(v float64) {
	if sb := s.j.shared; sb != nil {
		sb.Tighten(v)
	}
}

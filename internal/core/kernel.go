package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// This file implements the batched expansion kernel (Options.Expand ==
// ExpandBatched). Expanding a node pair is the hot path of every pruning
// algorithm once the leaf scan is cheap: for an expandBoth pair it computes
// n*m MINMINDIST values, and the legacy path (expand.go) does so through
// per-pair rect method calls after materialising every candidate nodePair
// (~11 words each) whether it survives pruning or not.
//
// The kernel reverses that order. beginExpand copies the child MBRs into
// flat structure-of-arrays scratch (xlo/xhi/ylo/yhi per side, pooled) and
// computes all pairwise MINMINDIST keys in one tight branch-light loop the
// compiler keeps in registers; finish then materialises only the sub-pairs
// whose key survives the pruning bound. The two-phase shape exists because
// the two drivers tighten the auxiliary bound differently: the sequential
// algorithms assign j.bound between the phases, the parallel engine CASes
// the shared atomic. Everything observable — the sub-pair set, the bound
// value, SubPairsGenerated/SubPairsPruned, trace events — is identical to
// the legacy path:
//
//   - The per-axis gaps are computed by the same subtraction expressions as
//     geom.Metric.MinMinKey (only one of the two directed gaps can be
//     positive), so the keys are bit-identical.
//   - The bound candidate is computed over ALL generated sub-pairs before
//     any filtering, exactly like the legacy boundCandidate; the kernel
//     only skips MINMAXDIST evaluations that provably cannot lower the
//     K = 1 bound (MINMAXDIST >= MINMINDIST >= current candidate).
//   - Filtering uses the post-tighten T, the same value the legacy drivers
//     use after expand() returned.
//
// The scratch is pooled and every slice is grown in place, so a warm
// expansion allocates nothing beyond the caller's destination slice.

// kernelScratch carries one expansion's flat MBR copies and derived keys.
type kernelScratch struct {
	axlo, axhi, aylo, ayhi []float64
	bxlo, bxhi, bylo, byhi []float64
	keys                   []float64 // MINMINDIST keys, i-major (a outer, b inner)
	maxmax                 []float64 // MAXMAXDIST keys scratch for the K > 1 bound
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// growF64 resizes a scratch slice to n elements, reusing capacity.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func (sc *kernelScratch) fillA(entries []rtree.Entry) {
	n := len(entries)
	sc.axlo, sc.axhi = growF64(sc.axlo, n), growF64(sc.axhi, n)
	sc.aylo, sc.ayhi = growF64(sc.aylo, n), growF64(sc.ayhi, n)
	for i := range entries {
		r := &entries[i].Rect
		sc.axlo[i], sc.axhi[i] = r.Min.X, r.Max.X
		sc.aylo[i], sc.ayhi[i] = r.Min.Y, r.Max.Y
	}
}

func (sc *kernelScratch) fillB(entries []rtree.Entry) {
	n := len(entries)
	sc.bxlo, sc.bxhi = growF64(sc.bxlo, n), growF64(sc.bxhi, n)
	sc.bylo, sc.byhi = growF64(sc.bylo, n), growF64(sc.byhi, n)
	for i := range entries {
		r := &entries[i].Rect
		sc.bxlo[i], sc.bxhi[i] = r.Min.X, r.Max.X
		sc.bylo[i], sc.byhi[i] = r.Min.Y, r.Max.Y
	}
}

func (sc *kernelScratch) fillARect(r geom.Rect) {
	sc.axlo, sc.axhi = growF64(sc.axlo, 1), growF64(sc.axhi, 1)
	sc.aylo, sc.ayhi = growF64(sc.aylo, 1), growF64(sc.ayhi, 1)
	sc.axlo[0], sc.axhi[0] = r.Min.X, r.Max.X
	sc.aylo[0], sc.ayhi[0] = r.Min.Y, r.Max.Y
}

func (sc *kernelScratch) fillBRect(r geom.Rect) {
	sc.bxlo, sc.bxhi = growF64(sc.bxlo, 1), growF64(sc.bxhi, 1)
	sc.bylo, sc.byhi = growF64(sc.bylo, 1), growF64(sc.byhi, 1)
	sc.bxlo[0], sc.bxhi[0] = r.Min.X, r.Max.X
	sc.bylo[0], sc.byhi[0] = r.Min.Y, r.Max.Y
}

// expansion is one in-flight batched expansion between beginExpand and
// finish. It holds the pooled scratch, the pair being expanded and the
// auxiliary bound candidate the generated MBR pairs support.
type expansion struct {
	j       *join
	sc      *kernelScratch
	p       nodePair
	na, nb  *rtree.Node
	mode    expandMode
	nA, nB  int
	n       int // nA * nB candidate sub-pairs
	hasKeys bool
	// bound is the tightest auxiliary pruning bound the sub-pair MBR
	// metrics support (+Inf when nothing applies), mirroring the legacy
	// boundCandidate. The caller applies it: the sequential driver assigns
	// j.bound, the parallel engine CASes the shared atomic.
	bound float64
}

// beginExpand starts a batched expansion of a node pair: it fills the SoA
// scratch, computes all pairwise MINMINDIST keys (for the pruning
// algorithms) and the auxiliary bound candidate (for the tightening ones),
// and counts the generated sub-pairs. The caller must call finish exactly
// once to materialise survivors and release the scratch.
func (j *join) beginExpand(p nodePair, na, nb *rtree.Node) expansion {
	e := expansion{
		j: j, sc: kernelPool.Get().(*kernelScratch),
		p: p, na: na, nb: nb,
		mode:  j.modeFor(na, nb),
		bound: math.Inf(1),
	}
	switch e.mode {
	case expandBoth:
		e.nA, e.nB = len(na.Entries), len(nb.Entries)
		e.sc.fillA(na.Entries)
		e.sc.fillB(nb.Entries)
	case expandAOnly:
		e.nA, e.nB = len(na.Entries), 1
		e.sc.fillA(na.Entries)
		e.sc.fillBRect(p.rb)
	case expandBOnly:
		e.nA, e.nB = 1, len(nb.Entries)
		e.sc.fillARect(p.ra)
		e.sc.fillB(nb.Entries)
	}
	e.n = e.nA * e.nB
	j.stats.subPairsGenerated.Add(int64(e.n))
	if j.prunes() {
		e.computeKeys()
		e.hasKeys = true
	}
	if j.tightens() {
		e.bound = e.boundCandidate()
	}
	return e
}

// computeKeys evaluates all pairwise MINMINDIST keys into sc.keys, i-major.
// The per-axis gap expressions match geom.Metric.MinMinKey exactly (at most
// one of the two directed gaps is positive; overlapping axes clamp to 0),
// so the keys are bit-identical to the legacy per-pair calls.
func (e *expansion) computeKeys() {
	sc := e.sc
	sc.keys = growF64(sc.keys, e.n)
	keys := sc.keys
	axlo, axhi := sc.axlo[:e.nA], sc.axhi[:e.nA]
	aylo, ayhi := sc.aylo[:e.nA], sc.ayhi[:e.nA]
	bxlo, bxhi := sc.bxlo[:e.nB], sc.bxhi[:e.nB]
	bylo, byhi := sc.bylo[:e.nB], sc.byhi[:e.nB]
	if e.j.metric.IsEuclidean() {
		idx := 0
		for i := 0; i < e.nA; i++ {
			alox, ahix := axlo[i], axhi[i]
			aloy, ahiy := aylo[i], ayhi[i]
			for t := 0; t < e.nB; t++ {
				dx := bxlo[t] - ahix
				if d := alox - bxhi[t]; d > dx {
					dx = d
				}
				if dx < 0 {
					dx = 0
				}
				dy := bylo[t] - ahiy
				if d := aloy - byhi[t]; d > dy {
					dy = d
				}
				if dy < 0 {
					dy = 0
				}
				keys[idx] = dx*dx + dy*dy
				idx++
			}
		}
		return
	}
	m := e.j.metric
	idx := 0
	for i := 0; i < e.nA; i++ {
		alox, ahix := axlo[i], axhi[i]
		aloy, ahiy := aylo[i], ayhi[i]
		for t := 0; t < e.nB; t++ {
			dx := bxlo[t] - ahix
			if d := alox - bxhi[t]; d > dx {
				dx = d
			}
			if dx < 0 {
				dx = 0
			}
			dy := bylo[t] - ahiy
			if d := aloy - byhi[t]; d > dy {
				dy = d
			}
			if dy < 0 {
				dy = 0
			}
			keys[idx] = m.Combine(dx, dy)
			idx++
		}
	}
}

// rectA returns the a-side MBR of sub-pair column i (the parent's own MBR
// when the a side is fixed).
func (e *expansion) rectA(i int) geom.Rect {
	if e.mode == expandBOnly {
		return e.p.ra
	}
	return e.na.Entries[i].Rect
}

// rectB returns the b-side MBR of sub-pair row t.
func (e *expansion) rectB(t int) geom.Rect {
	if e.mode == expandAOnly {
		return e.p.rb
	}
	return e.nb.Entries[t].Rect
}

// boundCandidate mirrors the legacy join.boundCandidate over the batched
// layout: the minimum MINMAXDIST over all sub-pairs for K = 1
// (Inequality 2), or the MAXMAXDIST prefix bound for K > 1 under
// KPruneMaxMax. It never mutates join state.
func (e *expansion) boundCandidate() float64 {
	j := e.j
	bound := math.Inf(1)
	if e.n == 0 {
		return bound
	}
	if j.k == 1 {
		// MINMAXDIST >= MINMINDIST, so a pair whose MINMINDIST key already
		// reaches the best candidate cannot lower it — skipping it leaves
		// the minimum unchanged while avoiding the 16-edge MinMaxKey scan.
		keys := e.sc.keys[:e.n]
		idx := 0
		for i := 0; i < e.nA; i++ {
			for t := 0; t < e.nB; t++ {
				if keys[idx] < bound {
					if mm := j.metric.MinMaxKey(e.rectA(i), e.rectB(t)); mm < bound {
						bound = mm
					}
				}
				idx++
			}
		}
		return bound
	}
	if j.opts.KPrune != KPruneMaxMax {
		return bound
	}
	// K > 1: the guaranteed point-pair count is uniform across one
	// expansion's sub-pairs (all expanded children sit at the same level,
	// and a fixed side contributes one shared node), so the legacy
	// sort-and-accumulate over (maxmax, count) records reduces to the
	// prefix of the sorted MAXMAXDIST keys alone, with the same running
	// sum of the same uniform count.
	var cntA, cntB float64
	switch e.mode {
	case expandBoth:
		cntA = j.guaranteedPoints(j.mA, e.na.Level-1)
		cntB = j.guaranteedPoints(j.mB, e.nb.Level-1)
	case expandAOnly:
		cntA = j.guaranteedPoints(j.mA, e.na.Level-1)
		cntB = nodeGuaranteedPoints(j.mB, e.nb)
	case expandBOnly:
		cntA = nodeGuaranteedPoints(j.mA, e.na)
		cntB = j.guaranteedPoints(j.mB, e.nb.Level-1)
	}
	c := cntA * cntB
	e.sc.maxmax = growF64(e.sc.maxmax, e.n)
	mx := e.sc.maxmax
	idx := 0
	for i := 0; i < e.nA; i++ {
		for t := 0; t < e.nB; t++ {
			mx[idx] = j.metric.MaxMaxKey(e.rectA(i), e.rectB(t))
			idx++
		}
	}
	sort.Float64s(mx)
	var cum float64
	for i := range mx {
		cum += c
		if cum >= float64(j.k) {
			return mx[i]
		}
	}
	return bound
}

// finish materialises the sub-pairs whose MINMINDIST key does not exceed T
// into dst (appending), counts the pruned remainder, and releases the
// scratch. Tie keys are computed only for survivors — pruned pairs' keys
// were never observable on the legacy path either. Callers that recurse
// into the result must pass a fresh dst (nil): the returned slice outlives
// the expansion, unlike the pooled scratch.
func (e *expansion) finish(dst []nodePair, T float64) []nodePair {
	j := e.j
	keys := e.sc.keys
	var pruned int64
	idx := 0
	for i := 0; i < e.nA; i++ {
		for t := 0; t < e.nB; t++ {
			var key float64
			if e.hasKeys {
				key = keys[idx]
				if key > T {
					pruned++
					idx++
					continue
				}
			}
			sp := nodePair{minminSq: key}
			switch e.mode {
			case expandBoth:
				sp.a, sp.b = e.na.Entries[i].Child(), e.nb.Entries[t].Child()
				sp.ra, sp.rb = e.na.Entries[i].Rect, e.nb.Entries[t].Rect
				sp.la, sp.lb = e.na.Level-1, e.nb.Level-1
			case expandAOnly:
				sp.a, sp.b = e.na.Entries[i].Child(), e.p.b
				sp.ra, sp.rb = e.na.Entries[i].Rect, e.p.rb
				sp.la, sp.lb = e.na.Level-1, e.p.lb
			case expandBOnly:
				sp.a, sp.b = e.p.a, e.nb.Entries[t].Child()
				sp.ra, sp.rb = e.p.ra, e.nb.Entries[t].Rect
				sp.la, sp.lb = e.p.la, e.nb.Level-1
			}
			if j.useTie {
				sp.tieKey = tieKeyFor(j.opts.Tie, j.metric, sp.ra, sp.rb,
					j.rootAreaA, j.rootAreaB)
			}
			dst = append(dst, sp)
			idx++
		}
	}
	if pruned > 0 {
		j.stats.subPairsPruned.Add(pruned)
	}
	kernelPool.Put(e.sc)
	e.sc = nil
	return dst
}

package core

import (
	"errors"
	"fmt"

	"repro/internal/rtree"
)

// ErrEmptyInput is returned when either input tree holds no points, so no
// pair exists.
var ErrEmptyInput = errors.New("core: closest pair query over an empty data set")

// KClosestPairs finds the K closest pairs between the point sets stored in
// the two trees (Section 2.1). Results are sorted by ascending distance.
// When fewer than K pairs exist (K > |P|*|Q|) all pairs are returned. With
// distance ties the result is one of the valid instances, as in the paper.
//
// The trees may use different page sizes, node capacities and heights; the
// Options.Height strategy governs mismatched heights.
func KClosestPairs(ta, tb *rtree.Tree, k int, opts Options) ([]Pair, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	j, err := newJoin(ta, tb, k, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return nil, Stats{}, ErrEmptyInput
	}

	startA := ta.Pool().Stats()
	startB := tb.Pool().Stats()
	startCA := ta.NodeCacheStats()
	startCB := tb.NodeCacheStats()

	root, err := j.rootPair()
	if err != nil {
		return nil, Stats{}, err
	}
	switch {
	case opts.Algorithm == Heap && opts.workers() > 1:
		err = j.runHeapParallel(root, opts.workers())
	case opts.Algorithm == Heap:
		err = j.runHeap(root)
	default:
		err = j.runRecursive(root)
	}
	if err != nil {
		return nil, Stats{}, err
	}

	stats := j.stats.snapshot()
	// With a shared pool (e.g. a self join) report the delta once.
	stats.IOP = ta.Pool().Stats().Sub(startA)
	if ta.Pool() != tb.Pool() {
		stats.IOQ = tb.Pool().Stats().Sub(startB)
	}
	ca := ta.NodeCacheStats().Sub(startCA)
	stats.NodeCacheHits, stats.NodeCacheMisses = ca.Hits, ca.Misses
	if ta != tb {
		cb := tb.NodeCacheStats().Sub(startCB)
		stats.NodeCacheHits += cb.Hits
		stats.NodeCacheMisses += cb.Misses
	}
	return j.results(), stats, nil
}

// ClosestPair finds the single closest pair (the 1-CPQ of Section 2.1),
// using the K = 1 specializations (Inequality 2 pruning) automatically.
func ClosestPair(ta, tb *rtree.Tree, opts Options) (Pair, Stats, error) {
	pairs, stats, err := KClosestPairs(ta, tb, 1, opts)
	if err != nil {
		return Pair{}, stats, err
	}
	if len(pairs) == 0 {
		return Pair{}, stats, ErrEmptyInput
	}
	return pairs[0], stats, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/rtree"
)

// ErrEmptyInput is returned when either input tree holds no points, so no
// pair exists.
var ErrEmptyInput = errors.New("core: closest pair query over an empty data set")

// KClosestPairs finds the K closest pairs between the point sets stored in
// the two trees (Section 2.1). Results are sorted by ascending distance.
// When fewer than K pairs exist (K > |P|*|Q|) all pairs are returned. With
// distance ties the result is one of the valid instances, as in the paper.
//
// The trees may use different page sizes, node capacities and heights; the
// Options.Height strategy governs mismatched heights.
//
// KClosestPairs is the non-cancellable shim over KClosestPairsContext.
func KClosestPairs(ta, tb *rtree.Tree, k int, opts Options) ([]Pair, Stats, error) {
	return KClosestPairsContext(context.Background(), ta, tb, k, opts)
}

// KClosestPairsContext is KClosestPairs under a context: the traversal
// polls ctx every cancelStride steps (parallel workers per claimed batch)
// and returns ctx.Err() when it fires, with all buffer-pool pins released
// and all workers joined. A query that completes without the context
// firing returns results, counters and disk accesses byte-identical to
// the context-free call.
func KClosestPairsContext(ctx context.Context, ta, tb *rtree.Tree, k int, opts Options) ([]Pair, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	j, err := newJoin(ta, tb, k, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return nil, Stats{}, ErrEmptyInput
	}

	// Observability setup: the label and start time are only computed when
	// a consumer is attached, so the default query path takes no
	// timestamps and formats nothing.
	measure := opts.Metrics != nil || opts.SlowLog != nil
	var label string
	if opts.Tracer != nil || measure {
		label = QueryLabel(opts, k)
	}
	if opts.Tracer != nil {
		j.span = obs.StartSpanFrom(opts.Tracer, opts.Trace, label)
	}
	var started time.Time
	if measure {
		started = time.Now()
	}

	startA := ta.Pool().Stats()
	startB := tb.Pool().Stats()
	startCA := ta.NodeCacheStats()
	startCB := tb.NodeCacheStats()

	root, err := j.rootPair()
	if err == nil {
		err = ctx.Err() // don't start a traversal under a dead context
	}
	if err == nil {
		switch {
		case opts.Algorithm == Heap && opts.workers() > 1:
			err = j.runHeapParallel(ctx, root, opts.workers())
		case opts.Algorithm == Heap:
			err = j.runHeap(ctx, root)
		default:
			err = j.runRecursive(ctx, root)
		}
	}
	if err != nil {
		j.traceQueryEnd(0, err)
		if measure {
			r := obs.QueryReport{Label: label, Seconds: time.Since(started).Seconds(),
				Workers: opts.workers(), Err: err.Error()}
			opts.Metrics.Record(r)
			opts.SlowLog.Record(r)
		}
		return nil, Stats{}, err
	}

	stats := j.stats.snapshot()
	// With a shared pool (e.g. a self join) report the delta once.
	stats.IOP = ta.Pool().Stats().Sub(startA)
	if ta.Pool() != tb.Pool() {
		stats.IOQ = tb.Pool().Stats().Sub(startB)
	}
	ca := ta.NodeCacheStats().Sub(startCA)
	stats.Merge(Stats{NodeCacheHits: ca.Hits, NodeCacheMisses: ca.Misses})
	if ta != tb {
		cb := tb.NodeCacheStats().Sub(startCB)
		stats.Merge(Stats{NodeCacheHits: cb.Hits, NodeCacheMisses: cb.Misses})
	}
	pairs := j.results()
	j.traceQueryEnd(len(pairs), nil)
	if measure {
		r := obs.QueryReport{
			Label:       label,
			Seconds:     time.Since(started).Seconds(),
			Accesses:    stats.Accesses(),
			NodePairs:   stats.NodePairsProcessed,
			PointPairs:  stats.PointPairsCompared,
			CacheHits:   stats.NodeCacheHits,
			CacheMisses: stats.NodeCacheMisses,
			Results:     len(pairs),
			Workers:     opts.workers(),
		}
		if len(pairs) > 0 {
			r.KthDistance = pairs[len(pairs)-1].Dist
		}
		opts.Metrics.Record(r)
		opts.SlowLog.Record(r)
	}
	return pairs, stats, nil
}

// QueryLabel renders the query description used as the span label and the
// metrics/slow-log aggregation key. Exported so the facade's explain path
// labels its plan exactly like the engine labels its span.
func QueryLabel(opts Options, k int) string {
	if w := opts.workers(); w > 1 {
		return fmt.Sprintf("%s k=%d par=%d", opts.Algorithm, k, w)
	}
	return fmt.Sprintf("%s k=%d", opts.Algorithm, k)
}

// ClosestPair finds the single closest pair (the 1-CPQ of Section 2.1),
// using the K = 1 specializations (Inequality 2 pruning) automatically.
//
// ClosestPair is the non-cancellable shim over ClosestPairContext.
func ClosestPair(ta, tb *rtree.Tree, opts Options) (Pair, Stats, error) {
	return ClosestPairContext(context.Background(), ta, tb, opts)
}

// ClosestPairContext is ClosestPair under a context; see
// KClosestPairsContext for the cancellation contract.
func ClosestPairContext(ctx context.Context, ta, tb *rtree.Tree, opts Options) (Pair, Stats, error) {
	pairs, stats, err := KClosestPairsContext(ctx, ta, tb, 1, opts)
	if err != nil {
		return Pair{}, stats, err
	}
	if len(pairs) == 0 {
		return Pair{}, stats, ErrEmptyInput
	}
	return pairs[0], stats, nil
}

package core

import (
	"math"
	"sort"
)

// kHeap is the result structure of Section 3.8: a bounded max-heap of the
// K closest point pairs found so far, ordered by the lessPair total order
// (squared distance, exact ties by refs) with the largest on top. While
// the heap is not yet full its threshold is +Inf; afterwards it is the
// top pair's distance, and a new pair displaces the top when smaller
// under the total order.
type kHeap struct {
	k     int
	pairs []kPair // binary max-heap on distSq
}

type kPair struct {
	distSq     float64
	p, q       [2]float64
	refP, refQ int64
}

func newKHeap(k int) *kHeap {
	return &kHeap{k: k, pairs: make([]kPair, 0, min(k, 1024))}
}

// threshold returns the current pruning distance T contributed by the
// result set: +Inf until K pairs are known, then the K-th smallest
// distance found so far (squared).
func (h *kHeap) threshold() float64 {
	if len(h.pairs) < h.k {
		return math.Inf(1)
	}
	return h.pairs[0].distSq
}

// full reports whether K pairs have been collected.
func (h *kHeap) full() bool { return len(h.pairs) >= h.k }

// reset empties the heap, keeping the backing array (parallel workers
// reuse their local heap between merges).
func (h *kHeap) reset() { h.pairs = h.pairs[:0] }

// lessPair is the heap's total order: ascending squared distance, exact
// ties broken by refs. Ordering members totally (not just by distance)
// makes the retained set a pure function of the candidate multiset —
// scan order, worker interleaving and shard boundaries cannot change
// which of several equidistant pairs survives at the K-th position, so
// parallel and scatter-gather runs reproduce the sequential result
// bit-for-bit even at boundary ties.
func lessPair(a, b *kPair) bool {
	if a.distSq != b.distSq {
		return a.distSq < b.distSq
	}
	if a.refP != b.refP {
		return a.refP < b.refP
	}
	return a.refQ < b.refQ
}

// wouldAccept reports whether a pair at the given distance (squared)
// could enter the heap. Leaf scans call it before materialising a kPair,
// so rejected candidates — the overwhelming majority once the heap is
// full — cost one float comparison and no copying. Distances equal to
// the threshold pass: offer then settles the tie by refs.
func (h *kHeap) wouldAccept(distSq float64) bool {
	return len(h.pairs) < h.k || distSq <= h.pairs[0].distSq
}

// offer inserts a candidate pair if it qualifies under the total order,
// returning true when the result set changed.
func (h *kHeap) offer(p kPair) bool {
	if len(h.pairs) < h.k {
		h.pairs = append(h.pairs, p)
		h.siftUp(len(h.pairs) - 1)
		return true
	}
	if !lessPair(&p, &h.pairs[0]) {
		return false
	}
	h.pairs[0] = p
	h.siftDown(0)
	return true
}

// sorted returns the collected pairs in ascending distance order (the
// paper reports K-CP results ordered by distance).
func (h *kHeap) sorted() []kPair {
	out := append([]kPair(nil), h.pairs...)
	sort.Slice(out, func(i, j int) bool { return lessPair(&out[i], &out[j]) })
	return out
}

func (h *kHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !lessPair(&h.pairs[parent], &h.pairs[i]) {
			return
		}
		h.pairs[parent], h.pairs[i] = h.pairs[i], h.pairs[parent]
		i = parent
	}
}

func (h *kHeap) siftDown(i int) {
	n := len(h.pairs)
	for {
		largest := i
		if l := 2*i + 1; l < n && lessPair(&h.pairs[largest], &h.pairs[l]) {
			largest = l
		}
		if r := 2*i + 2; r < n && lessPair(&h.pairs[largest], &h.pairs[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.pairs[i], h.pairs[largest] = h.pairs[largest], h.pairs[i]
		i = largest
	}
}

package core

import (
	"math"
	"sort"
)

// kHeap is the result structure of Section 3.8: a bounded max-heap of the
// K closest point pairs found so far, ordered by squared distance with the
// largest on top. While the heap is not yet full its threshold is +Inf;
// afterwards it is the top pair's distance, and a new pair displaces the
// top when strictly closer.
type kHeap struct {
	k     int
	pairs []kPair // binary max-heap on distSq
}

type kPair struct {
	distSq     float64
	p, q       [2]float64
	refP, refQ int64
}

func newKHeap(k int) *kHeap {
	return &kHeap{k: k, pairs: make([]kPair, 0, min(k, 1024))}
}

// threshold returns the current pruning distance T contributed by the
// result set: +Inf until K pairs are known, then the K-th smallest
// distance found so far (squared).
func (h *kHeap) threshold() float64 {
	if len(h.pairs) < h.k {
		return math.Inf(1)
	}
	return h.pairs[0].distSq
}

// full reports whether K pairs have been collected.
func (h *kHeap) full() bool { return len(h.pairs) >= h.k }

// reset empties the heap, keeping the backing array (parallel workers
// reuse their local heap between merges).
func (h *kHeap) reset() { h.pairs = h.pairs[:0] }

// wouldAccept reports whether a pair at the given distance (squared) would
// enter the heap. Leaf scans call it before materialising a kPair, so
// rejected candidates — the overwhelming majority once the heap is full —
// cost one float comparison and no copying.
func (h *kHeap) wouldAccept(distSq float64) bool {
	return len(h.pairs) < h.k || distSq < h.pairs[0].distSq
}

// offer inserts a candidate pair if it qualifies, returning true when the
// result set changed.
func (h *kHeap) offer(p kPair) bool {
	if !h.wouldAccept(p.distSq) {
		return false
	}
	if len(h.pairs) < h.k {
		h.pairs = append(h.pairs, p)
		h.siftUp(len(h.pairs) - 1)
		return true
	}
	h.pairs[0] = p
	h.siftDown(0)
	return true
}

// sorted returns the collected pairs in ascending distance order (the
// paper reports K-CP results ordered by distance).
func (h *kHeap) sorted() []kPair {
	out := append([]kPair(nil), h.pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].distSq != out[j].distSq {
			return out[i].distSq < out[j].distSq
		}
		// Deterministic order among exact ties.
		if out[i].refP != out[j].refP {
			return out[i].refP < out[j].refP
		}
		return out[i].refQ < out[j].refQ
	})
	return out
}

func (h *kHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.pairs[parent].distSq >= h.pairs[i].distSq {
			return
		}
		h.pairs[parent], h.pairs[i] = h.pairs[i], h.pairs[parent]
		i = parent
	}
}

func (h *kHeap) siftDown(i int) {
	n := len(h.pairs)
	for {
		largest := i
		if l := 2*i + 1; l < n && h.pairs[l].distSq > h.pairs[largest].distSq {
			largest = l
		}
		if r := 2*i + 2; r < n && h.pairs[r].distSq > h.pairs[largest].distSq {
			largest = r
		}
		if largest == i {
			return
		}
		h.pairs[i], h.pairs[largest] = h.pairs[largest], h.pairs[i]
		i = largest
	}
}

package core

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// join carries the state of one closest-pair query across the traversal.
type join struct {
	ta, tb *rtree.Tree
	opts   Options
	k      int
	kheap  *kHeap
	// bound is the auxiliary pruning bound B (squared): the MINMAXDIST
	// bound of Inequality 2 for K = 1, or the MAXMAXDIST prefix bound for
	// K > 1 under KPruneMaxMax. The effective pruning distance T is
	// min(bound, K-heap threshold). Only the sequential algorithms use it;
	// the parallel HEAP engine folds both sources into one atomic bound.
	bound float64
	stats statsAcc

	// span is the query's trace span, nil when tracing is disabled. lastT
	// is the last effective bound T the span saw, used by the sequential
	// algorithms to emit EvBoundTightened only on strict decreases (the
	// parallel engine traces CAS successes instead; see trace.go).
	span  *obs.Span
	lastT float64

	rootAreaA, rootAreaB float64
	useTie               bool
	mA, mB               float64 // minimum node occupancies as floats
	metric               geom.Metric

	// shared is the optional cross-join bound (Options.SharedBound): the
	// effective pruning distance T folds it in, and publishShared pushes
	// this join's own sound upper bounds back. nil for self-contained
	// queries.
	shared *SharedBound

	// cancel is the stride-gated context poll the sequential drivers call
	// once per traversal step (heap pop, recursive visit, range-join pop).
	cancel cancelGate
}

func newJoin(ta, tb *rtree.Tree, k int, opts Options) (*join, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	j := &join{
		ta:     ta,
		tb:     tb,
		opts:   opts,
		k:      k,
		kheap:  newKHeap(k),
		bound:  math.Inf(1),
		lastT:  math.Inf(1),
		mA:     float64(ta.Config().MinEntries),
		mB:     float64(tb.Config().MinEntries),
		metric: opts.Metric,
		shared: opts.SharedBound,
	}
	j.useTie = opts.Tie != TieNone &&
		(opts.Algorithm == SortedDistances || opts.Algorithm == Heap)
	ba, err := ta.Bounds()
	if err != nil {
		return nil, err
	}
	bb, err := tb.Bounds()
	if err != nil {
		return nil, err
	}
	j.rootAreaA, j.rootAreaB = ba.Area(), bb.Area()
	return j, nil
}

// T returns the current pruning distance (squared): candidate node pairs
// with MINMINDIST > T cannot contribute a result pair. With a shared
// cross-join bound attached (Options.SharedBound) the fold includes it:
// pairs farther than a distance already achieved elsewhere in the
// scatter-gather cannot enter the merged global result either.
func (j *join) T() float64 {
	return math.Min(math.Min(j.kheap.threshold(), j.bound), j.shared.Load())
}

// publishShared forwards the join's current sound global upper bound —
// min(K-heap threshold, auxiliary bound), both valid beyond this join's
// subtree product (see SharedBound) — to the cross-join bound. No-op
// without one. Sequential drivers call it after every tightening site
// (leaf scans, expansion bound updates); the parallel engine forwards
// its atomic bound's CAS successes instead (see parallel.go).
func (j *join) publishShared() {
	if j.shared == nil {
		return
	}
	if t := math.Min(j.kheap.threshold(), j.bound); !math.IsInf(t, 1) {
		j.shared.Tighten(t)
	}
}

// prunes reports whether the algorithm uses MINMINDIST pruning at all
// (everything except Naive).
func (j *join) prunes() bool { return j.opts.Algorithm != Naive }

// tightens reports whether the algorithm updates T from node metrics
// before descending (SIM, STD, HEAP).
func (j *join) tightens() bool {
	switch j.opts.Algorithm {
	case Simple, SortedDistances, Heap:
		return true
	}
	return false
}

// rootPair forms the initial node pair from the two roots.
func (j *join) rootPair() (nodePair, error) {
	ra, err := j.ta.Bounds()
	if err != nil {
		return nodePair{}, err
	}
	rb, err := j.tb.Bounds()
	if err != nil {
		return nodePair{}, err
	}
	return nodePair{
		a: j.ta.RootID(), b: j.tb.RootID(),
		ra: ra, rb: rb,
		la: j.ta.Height() - 1, lb: j.tb.Height() - 1,
		minminSq: j.metric.MinMinKey(ra, rb),
	}, nil
}

// expansion sides.
type expandMode int

const (
	expandBoth expandMode = iota
	expandAOnly
	expandBOnly
)

// modeFor decides which side(s) of a node pair to open, implementing the
// fix-at-root and fix-at-leaves strategies of Section 3.7.
func (j *join) modeFor(na, nb *rtree.Node) expandMode {
	if na.Level == nb.Level {
		return expandBoth
	}
	switch j.opts.Height {
	case FixAtRoot:
		// Descend only the taller side until the levels match.
		if na.Level > nb.Level {
			return expandAOnly
		}
		return expandBOnly
	default: // FixAtLeaves
		// Descend both sides while both are internal; once one side is a
		// leaf, keep descending the other.
		if na.IsLeaf() {
			return expandBOnly
		}
		if nb.IsLeaf() {
			return expandAOnly
		}
		return expandBoth
	}
}

// expandInto generates the candidate sub-pairs of a node pair, tightens
// the sequential auxiliary bound for the algorithms that do so (SIM, STD,
// HEAP), and appends the sub-pairs surviving the post-tighten pruning
// bound T to dst. MINMINDIST values are computed for every pruning
// algorithm; tie keys only when a tie strategy is active. The batched
// kernel (kernel.go) and the legacy per-pair path produce identical
// sub-pairs, bounds and counters; Options.Expand selects between them.
// Sequential drivers only — it mutates j.bound; parallel workers pair
// beginExpand with the atomic bound instead.
func (j *join) expandInto(p nodePair, na, nb *rtree.Node, dst []nodePair) []nodePair {
	if j.opts.Expand == ExpandLegacy {
		subs, mode := j.computeSubs(p, na, nb)
		if j.tightens() {
			if b := j.boundCandidate(subs, mode, na, nb); b < j.bound {
				j.bound = b
				j.traceBound(j.boundSource())
				j.publishShared()
			}
		}
		if !j.prunes() {
			return append(dst, subs...)
		}
		T := j.T()
		for _, sp := range subs {
			if sp.minminSq > T {
				j.stats.subPairsPruned.Add(1)
				continue
			}
			dst = append(dst, sp)
		}
		return dst
	}
	e := j.beginExpand(p, na, nb)
	if j.tightens() && e.bound < j.bound {
		j.bound = e.bound
		j.traceBound(j.boundSource())
		j.publishShared()
	}
	T := math.Inf(1)
	if j.prunes() {
		T = j.T()
	}
	return e.finish(dst, T)
}

// computeSubs generates the candidate sub-pairs of a node pair with their
// MINMINDIST (and tie keys when active). It only touches atomic state, so
// the sequential driver and the parallel workers share it.
func (j *join) computeSubs(p nodePair, na, nb *rtree.Node) ([]nodePair, expandMode) {
	mode := j.modeFor(na, nb)
	subs := j.expandRaw(p, na, nb)
	j.stats.subPairsGenerated.Add(int64(len(subs)))

	if j.prunes() {
		for i := range subs {
			subs[i].minminSq = j.metric.MinMinKey(subs[i].ra, subs[i].rb)
		}
	}
	if j.useTie {
		for i := range subs {
			subs[i].tieKey = tieKeyFor(j.opts.Tie, j.metric, subs[i].ra, subs[i].rb,
				j.rootAreaA, j.rootAreaB)
		}
	}
	return subs, mode
}

// boundCandidate computes the tightest auxiliary pruning bound the sub-pair
// MBR metrics support, without mutating any join state (+Inf when nothing
// applies): via Inequality 2 (MINMAXDIST holds for at least one point pair)
// when K = 1, or via the MAXMAXDIST prefix rule when K > 1 and the
// technical-report pruning variant is selected.
func (j *join) boundCandidate(subs []nodePair, mode expandMode, na, nb *rtree.Node) float64 {
	bound := math.Inf(1)
	if len(subs) == 0 {
		return bound
	}
	if j.k == 1 {
		for i := range subs {
			var mm float64
			if j.useTie && j.opts.Tie == Tie2 {
				mm = subs[i].tieKey // Tie2's key is exactly the MINMAXDIST key
			} else {
				mm = j.metric.MinMaxKey(subs[i].ra, subs[i].rb)
			}
			if mm < bound {
				bound = mm
			}
		}
		return bound
	}
	if j.opts.KPrune != KPruneMaxMax {
		return bound
	}
	// K > 1: every point pair under a sub-pair has distance at most its
	// MAXMAXDIST (Inequality 1, right side). Sub-pairs cover disjoint
	// point-pair sets, so the prefix of sub-pairs, sorted by ascending
	// MAXMAXDIST, whose guaranteed pair count reaches K bounds the K-th
	// closest distance by the prefix's largest MAXMAXDIST.
	type mc struct {
		maxmaxSq float64
		count    float64
	}
	mcs := make([]mc, len(subs))
	for i := range subs {
		var cntA, cntB float64
		switch mode {
		case expandBoth:
			cntA = j.guaranteedPoints(j.mA, subs[i].la)
			cntB = j.guaranteedPoints(j.mB, subs[i].lb)
		case expandAOnly:
			cntA = j.guaranteedPoints(j.mA, subs[i].la)
			cntB = nodeGuaranteedPoints(j.mB, nb)
		case expandBOnly:
			cntA = nodeGuaranteedPoints(j.mA, na)
			cntB = j.guaranteedPoints(j.mB, subs[i].lb)
		}
		mcs[i] = mc{
			maxmaxSq: j.metric.MaxMaxKey(subs[i].ra, subs[i].rb),
			count:    cntA * cntB,
		}
	}
	sort.Slice(mcs, func(x, y int) bool { return mcs[x].maxmaxSq < mcs[y].maxmaxSq })
	var cum float64
	for i := range mcs {
		cum += mcs[i].count
		if cum >= float64(j.k) {
			if mcs[i].maxmaxSq < bound {
				bound = mcs[i].maxmaxSq
			}
			return bound
		}
	}
	return bound
}

// guaranteedPoints returns the minimum number of data points in a non-root
// subtree whose root node sits at the given level: m^(level+1).
func (j *join) guaranteedPoints(m float64, level int) float64 {
	return math.Pow(m, float64(level+1))
}

// nodeGuaranteedPoints bounds the points under a node we have in hand
// (which may be a root with fewer than m entries).
func nodeGuaranteedPoints(m float64, n *rtree.Node) float64 {
	if n.IsLeaf() {
		return float64(len(n.Entries))
	}
	return float64(len(n.Entries)) * math.Pow(m, float64(n.Level))
}

// scanLeaves performs step CP3 for the sequential algorithms: evaluate the
// point pairs between two leaves against the join's K-heap, pruned by the
// auxiliary bound and — when attached — the shared cross-join bound (the
// K-heap's own threshold applies in any case). Accepted pairs may have
// tightened the K-heap threshold, so the new value is published back.
func (j *join) scanLeaves(na, nb *rtree.Node) {
	j.scanLeavesInto(na, nb, j.kheap, math.Min(j.bound, j.shared.Load()))
	j.publishShared()
}

// scanLeavesInto evaluates the point pairs between two leaves against the
// given K-heap (the join's own for the sequential algorithms, a worker's
// local heap in parallel mode). extBound is a pruning distance (squared)
// from outside the heap — the sequential auxiliary bound or the parallel
// engine's published bound; pairs farther than min(extBound, K-heap
// threshold) cannot enter the final result, which the sweep scan exploits.
// It returns the smallest distance (squared) the heap accepted, +Inf if
// none — the signal parallel workers use to decide whether merging their
// local heap can tighten the published bound.
func (j *join) scanLeavesInto(na, nb *rtree.Node, kh *kHeap, extBound float64) float64 {
	switch j.opts.LeafScan {
	case LeafScanBrute:
		return j.scanLeavesBrute(na, nb, kh)
	case LeafScanGrid:
		return j.scanLeavesGrid(na, nb, kh, extBound)
	default:
		return j.scanLeavesSweep(na, nb, kh, extBound)
	}
}

// scanLeavesBrute is the paper's CP3: evaluate all n*m entry pairs.
func (j *join) scanLeavesBrute(na, nb *rtree.Node, kh *kHeap) float64 {
	minAccepted := math.Inf(1)
	for i := range na.Entries {
		ea := &na.Entries[i]
		for t := range nb.Entries {
			eb := &nb.Entries[t]
			d := j.metric.MinMinKey(ea.Rect, eb.Rect)
			if !kh.wouldAccept(d) {
				continue
			}
			kh.offer(kPair{
				distSq: d,
				p:      [2]float64{ea.Rect.Min.X, ea.Rect.Min.Y},
				q:      [2]float64{eb.Rect.Min.X, eb.Rect.Min.Y},
				refP:   ea.Ref,
				refQ:   eb.Ref,
			})
			if d < minAccepted {
				minAccepted = d
			}
		}
	}
	j.stats.pointPairsCompared.Add(int64(len(na.Entries) * len(nb.Entries)))
	return minAccepted
}

// readPair fetches both nodes of a pair, counting the accesses the paper
// measures.
func (j *join) readPair(p nodePair) (na, nb *rtree.Node, err error) {
	na, err = j.ta.ReadNode(p.a)
	if err != nil {
		return nil, nil, err
	}
	nb, err = j.tb.ReadNode(p.b)
	if err != nil {
		return nil, nil, err
	}
	j.stats.nodePairsProcessed.Add(1)
	j.traceNodeExpanded(p)
	return na, nb, nil
}

// results converts the K-heap contents into the public result slice.
func (j *join) results() []Pair {
	ks := j.kheap.sorted()
	out := make([]Pair, len(ks))
	for i, kp := range ks {
		out[i] = Pair{
			P:    geom.Point{X: kp.p[0], Y: kp.p[1]},
			Q:    geom.Point{X: kp.q[0], Y: kp.q[1]},
			RefP: kp.refP,
			RefQ: kp.refQ,
			Dist: j.metric.KeyToDist(kp.distSq),
		}
	}
	return out
}

package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TestSweepBruteEquivalence is the leaf-scan property test: for every
// algorithm, tie strategy, data distribution and several K, the sweep and
// brute scans must return identical result distances (the distance multiset
// of a K-CPQ answer is unique even when the pair set is tie-ambiguous), the
// sweep must never evaluate more point pairs than the brute scan, and both
// must match the brute-force oracle.
func TestSweepBruteEquivalence(t *testing.T) {
	type workload struct {
		name   string
		ps, qs []geom.Point
	}
	workloads := []workload{
		{"uniform", dataset.Uniform(7, 400), shiftPoints(dataset.Uniform(8, 360), 0.5)},
		{"clustered", dataset.Clustered(9, 400), shiftPoints(dataset.Clustered(10, 360), 0.25)},
	}
	ties := append([]TieStrategy{TieNone}, TieStrategies()...)
	for _, wl := range workloads {
		ta := buildTree(t, wl.ps, 256)
		tb := buildTree(t, wl.qs, 256)
		for _, alg := range Algorithms() {
			for _, tie := range ties {
				for _, k := range []int{1, 10, 73} {
					opts := DefaultOptions(alg)
					opts.Tie = tie
					opts.LeafScan = LeafScanBrute
					brutePairs, bruteStats, err := KClosestPairs(ta, tb, k, opts)
					if err != nil {
						t.Fatalf("%s %v %v k=%d brute: %v", wl.name, alg, tie, k, err)
					}
					opts.LeafScan = LeafScanSweep
					sweepPairs, sweepStats, err := KClosestPairs(ta, tb, k, opts)
					if err != nil {
						t.Fatalf("%s %v %v k=%d sweep: %v", wl.name, alg, tie, k, err)
					}
					if len(sweepPairs) != len(brutePairs) {
						t.Fatalf("%s %v %v k=%d: sweep returned %d pairs, brute %d",
							wl.name, alg, tie, k, len(sweepPairs), len(brutePairs))
					}
					for i := range sweepPairs {
						if sweepPairs[i].Dist != brutePairs[i].Dist {
							t.Fatalf("%s %v %v k=%d: pair %d dist sweep=%.17g brute=%.17g",
								wl.name, alg, tie, k, i, sweepPairs[i].Dist, brutePairs[i].Dist)
						}
					}
					if sweepStats.PointPairsCompared > bruteStats.PointPairsCompared {
						t.Fatalf("%s %v %v k=%d: sweep evaluated %d point pairs, brute %d",
							wl.name, alg, tie, k,
							sweepStats.PointPairsCompared, bruteStats.PointPairsCompared)
					}
					checkAgainstBrute(t, sweepPairs, wl.ps, wl.qs, k)
				}
			}
		}
	}
}

// TestSweepParallelEquivalence runs the sweep under the parallel HEAP
// engine: same distances as the sequential brute scan.
func TestSweepParallelEquivalence(t *testing.T) {
	ps := dataset.Uniform(21, 900)
	qs := shiftPoints(dataset.Uniform(22, 800), 0)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, k := range []int{1, 25, 100} {
		opts := DefaultOptions(Heap)
		opts.LeafScan = LeafScanBrute
		want, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.LeafScan = LeafScanSweep
		opts.Parallelism = 4
		got, _, err := KClosestPairs(ta, tb, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d pair %d: dist %.17g, want %.17g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// TestSweepMetrics exercises the sweep's x-gap pruning key under every
// supported metric (the key is metric-dependent: d^2 for L2, d for L1/Linf,
// d^p for general Lp).
func TestSweepMetrics(t *testing.T) {
	ps := dataset.Uniform(31, 300)
	qs := dataset.Uniform(32, 280)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	l3, err := geom.Lp(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []geom.Metric{geom.L2(), geom.L1(), geom.LInf(), l3} {
		for _, alg := range []Algorithm{SortedDistances, Heap} {
			opts := DefaultOptions(alg)
			opts.Metric = m
			opts.LeafScan = LeafScanBrute
			want, _, err := KClosestPairs(ta, tb, 20, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.LeafScan = LeafScanSweep
			got, sweepStats, err := KClosestPairs(ta, tb, 20, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v %v: got %d pairs, want %d", m, alg, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("%v %v pair %d: dist %.17g, want %.17g",
						m, alg, i, got[i].Dist, want[i].Dist)
				}
			}
			if sweepStats.PointPairsCompared <= 0 {
				t.Fatalf("%v %v: no point pairs counted", m, alg)
			}
		}
	}
}

func shiftPoints(pts []geom.Point, dx float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Add(dx, 0)
	}
	return out
}

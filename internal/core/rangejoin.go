package core

import (
	"context"
	"fmt"

	"repro/internal/rtree"
)

// WithinDistance answers the classic distance join that K-CPQ generalizes:
// report every pair (p, q) ∈ P × Q with dist(p, q) <= eps. It reuses the
// paper's machinery with a fixed pruning bound T = eps — subtree pairs
// with MINMINDIST > eps cannot contribute — and streams results through
// fn, which may return false to stop early. The traversal is iterative
// (HEAP-style ordering is unnecessary since T never changes, so plain
// stack order is used). Options contribute the metric and the height
// strategy.
//
// WithinDistance is the non-cancellable shim over WithinDistanceContext.
func WithinDistance(ta, tb *rtree.Tree, eps float64, opts Options, fn func(Pair) bool) (Stats, error) {
	return WithinDistanceContext(context.Background(), ta, tb, eps, opts, fn)
}

// WithinDistanceContext is WithinDistance under a context; see
// KClosestPairsContext for the cancellation contract.
func WithinDistanceContext(ctx context.Context, ta, tb *rtree.Tree, eps float64, opts Options, fn func(Pair) bool) (Stats, error) {
	if err := opts.validate(); err != nil {
		return Stats{}, err
	}
	if eps < 0 {
		return Stats{}, fmt.Errorf("core: negative distance bound %g", eps)
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return Stats{}, nil
	}
	j, err := newJoin(ta, tb, 1, opts)
	if err != nil {
		return Stats{}, err
	}
	startA := ta.Pool().Stats()
	startB := tb.Pool().Stats()
	epsKey := j.metric.DistToKey(eps)

	root, err := j.rootPair()
	if err != nil {
		return Stats{}, err
	}
	stack := []nodePair{root}
	stopped := false
	for len(stack) > 0 && !stopped {
		if err := j.cancel.poll(ctx); err != nil {
			return Stats{}, err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.minminSq > epsKey {
			j.stats.subPairsPruned.Add(1)
			continue
		}
		na, nb, err := j.readPair(p)
		if err != nil {
			return Stats{}, err
		}
		if na.IsLeaf() && nb.IsLeaf() {
			for i := range na.Entries {
				ea := &na.Entries[i]
				for t := range nb.Entries {
					eb := &nb.Entries[t]
					j.stats.pointPairsCompared.Add(1)
					key := j.metric.MinMinKey(ea.Rect, eb.Rect)
					if key > epsKey {
						continue
					}
					ok := fn(Pair{
						P:    ea.Rect.Min,
						Q:    eb.Rect.Min,
						RefP: ea.Ref,
						RefQ: eb.Ref,
						Dist: j.metric.KeyToDist(key),
					})
					if !ok {
						stopped = true
						break
					}
				}
				if stopped {
					break
				}
			}
			continue
		}
		subs := j.expandForRange(p, na, nb, epsKey)
		stack = append(stack, subs...)
	}

	stats := j.stats.snapshot()
	stats.IOP = ta.Pool().Stats().Sub(startA)
	if ta.Pool() != tb.Pool() {
		stats.IOQ = tb.Pool().Stats().Sub(startB)
	}
	return stats, nil
}

// expandForRange generates sub-pairs pruned against the fixed bound.
func (j *join) expandForRange(p nodePair, na, nb *rtree.Node, epsKey float64) []nodePair {
	subs := j.expandRaw(p, na, nb)
	j.stats.subPairsGenerated.Add(int64(len(subs)))
	kept := subs[:0]
	for _, sp := range subs {
		sp.minminSq = j.metric.MinMinKey(sp.ra, sp.rb)
		if sp.minminSq > epsKey {
			j.stats.subPairsPruned.Add(1)
			continue
		}
		kept = append(kept, sp)
	}
	return kept
}

// expandRaw generates the candidate sub-pairs of a node pair without
// computing metrics (shared by the range join).
func (j *join) expandRaw(p nodePair, na, nb *rtree.Node) []nodePair {
	mode := j.modeFor(na, nb)
	var subs []nodePair
	switch mode {
	case expandBoth:
		subs = make([]nodePair, 0, len(na.Entries)*len(nb.Entries))
		for i := range na.Entries {
			for t := range nb.Entries {
				subs = append(subs, nodePair{
					a: na.Entries[i].Child(), b: nb.Entries[t].Child(),
					ra: na.Entries[i].Rect, rb: nb.Entries[t].Rect,
					la: na.Level - 1, lb: nb.Level - 1,
				})
			}
		}
	case expandAOnly:
		subs = make([]nodePair, 0, len(na.Entries))
		for i := range na.Entries {
			subs = append(subs, nodePair{
				a: na.Entries[i].Child(), b: p.b,
				ra: na.Entries[i].Rect, rb: p.rb,
				la: na.Level - 1, lb: p.lb,
			})
		}
	case expandBOnly:
		subs = make([]nodePair, 0, len(nb.Entries))
		for t := range nb.Entries {
			subs = append(subs, nodePair{
				a: p.a, b: nb.Entries[t].Child(),
				ra: p.ra, rb: nb.Entries[t].Rect,
				la: p.la, lb: nb.Level - 1,
			})
		}
	}
	return subs
}

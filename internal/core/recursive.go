package core

import (
	"context"

	"repro/internal/obs"
	"repro/internal/sortx"
)

// runRecursive drives the four recursive algorithms (Naive, EXH, SIM, STD)
// from the given node pair. Each visit polls the cancellation gate once,
// which also makes runRecursive itself a cancellation point for its own
// sub-pair loop below.
func (j *join) runRecursive(ctx context.Context, p nodePair) error {
	if err := j.cancel.poll(ctx); err != nil {
		return err
	}
	if j.prunes() && p.minminSq > j.T() {
		j.stats.subPairsPruned.Add(1)
		return nil
	}
	na, nb, err := j.readPair(p)
	if err != nil {
		return err
	}
	if na.IsLeaf() && nb.IsLeaf() {
		j.scanLeaves(na, nb)
		j.traceBound(obs.SourceKHeap)
		return nil
	}
	// The expansion tightens T for SIM and STD and drops pairs that cannot
	// contain a result (CP2: keep MINMINDIST <= T). dst must be nil: the
	// recursion below keeps each level's sub-pairs live while descending,
	// so expansions cannot share an output buffer.
	subs := j.expandInto(p, na, nb, nil)
	if j.opts.Algorithm == SortedDistances {
		// CP2 of STD: process candidates in ascending MINMINDIST order
		// (tie strategy applied on equal distances), which shrinks T
		// faster and prunes more of the remaining pairs.
		sortx.Sort(subs, func(a, b nodePair) bool { return a.less(&b) }, j.opts.Sort)
	}
	for _, sp := range subs {
		// T keeps shrinking while the loop runs; runRecursive re-checks.
		if err := j.runRecursive(ctx, sp); err != nil {
			return err
		}
	}
	return nil
}

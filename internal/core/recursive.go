package core

import (
	"repro/internal/obs"
	"repro/internal/sortx"
)

// runRecursive drives the four recursive algorithms (Naive, EXH, SIM, STD)
// from the given node pair.
func (j *join) runRecursive(p nodePair) error {
	if j.prunes() && p.minminSq > j.T() {
		j.stats.subPairsPruned.Add(1)
		return nil
	}
	na, nb, err := j.readPair(p)
	if err != nil {
		return err
	}
	if na.IsLeaf() && nb.IsLeaf() {
		j.scanLeaves(na, nb)
		j.traceBound(obs.SourceKHeap)
		return nil
	}
	subs := j.expand(p, na, nb) // also tightens T for SIM and STD
	if j.prunes() {
		// Drop pairs that cannot contain a result (CP2: keep MINMINDIST <= T).
		kept := subs[:0]
		T := j.T()
		for _, sp := range subs {
			if sp.minminSq > T {
				j.stats.subPairsPruned.Add(1)
				continue
			}
			kept = append(kept, sp)
		}
		subs = kept
	}
	if j.opts.Algorithm == SortedDistances {
		// CP2 of STD: process candidates in ascending MINMINDIST order
		// (tie strategy applied on equal distances), which shrinks T
		// faster and prunes more of the remaining pairs.
		sortx.Sort(subs, func(a, b nodePair) bool { return a.less(&b) }, j.opts.Sort)
	}
	for _, sp := range subs {
		// T keeps shrinking while the loop runs; runRecursive re-checks.
		if err := j.runRecursive(sp); err != nil {
			return err
		}
	}
	return nil
}

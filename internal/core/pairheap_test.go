package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPairHeapPopsInOrder: the HEAP algorithm's queue must deliver node
// pairs in ascending (MINMINDIST, tie key) order — the property CP5's
// stopping condition relies on.
func TestPairHeapPopsInOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		h := &pairHeap{}
		for i := 0; i < n; i++ {
			h.push(nodePair{
				minminSq: float64(rng.Intn(20)), // force ties
				tieKey:   rng.Float64(),
			})
		}
		prev := nodePair{minminSq: -1, tieKey: -1}
		for h.Len() > 0 {
			p := h.pop()
			if p.minminSq < prev.minminSq {
				return false
			}
			if p.minminSq == prev.minminSq && p.tieKey < prev.tieKey {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPairHeapInterleavedPushPop mixes pushes and pops, mirroring the
// HEAP algorithm's actual usage.
func TestPairHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := &pairHeap{}
	popped := -1.0
	for op := 0; op < 5000; op++ {
		if h.Len() == 0 || rng.Intn(3) > 0 {
			// Pushes may only add keys >= the last popped key, as in the
			// real traversal (children bound below by their parent).
			h.push(nodePair{minminSq: popped + rng.Float64()*10})
		} else {
			p := h.pop()
			if p.minminSq < popped {
				t.Fatalf("op %d: popped %g after %g", op, p.minminSq, popped)
			}
			popped = p.minminSq
		}
	}
}

// TestSTDSortOrderIsUsed is a behavioral check of STD: with Tie2 (smallest
// MINMAXDIST first) and a distance tie between two subtrees, the tie key
// changes which subtree is visited first — both must still return the
// correct result.
func TestSTDSortOrderIsUsed(t *testing.T) {
	ps := uniformPoints(9000, 200, 0)
	qs := uniformPoints(9100, 200, 0) // identical workspace: many 0 ties
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	var results []float64
	for _, tie := range []TieStrategy{TieNone, Tie1, Tie2, Tie3, Tie4, Tie5} {
		opts := DefaultOptions(SortedDistances)
		opts.Tie = tie
		got, _, err := KClosestPairs(ta, tb, 3, opts)
		if err != nil {
			t.Fatalf("%v: %v", tie, err)
		}
		results = append(results, got[0].Dist)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("tie strategy changed the result: %v", results)
		}
	}
}

// BenchmarkPairHeap measures the HEAP frontier's push/pop cycle (the sift
// compare is the hot instruction of the sequential driver): push N pairs in
// the traversal's characteristic pattern — children keyed at or above their
// parent — then drain. Many equal minminSq values force the tie-key slow
// path often enough to keep it honest.
func BenchmarkPairHeap(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	pairs := make([]nodePair, n)
	for i := range pairs {
		pairs[i] = nodePair{
			minminSq: float64(rng.Intn(n / 8)), // ~8-way ties
			tieKey:   rng.Float64(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		h := &pairHeap{pairs: make([]nodePair, 0, n)}
		for i := range pairs {
			h.push(pairs[i])
		}
		for h.Len() > 0 {
			h.pop()
		}
	}
}

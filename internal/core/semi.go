package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rtree"
)

// SemiClosestPairs answers the semi-CPQ of the paper's future-work section
// (Section 6): for each point of the first data set, its nearest point in
// the second, so every P point appears exactly once in the result. Pairs
// are returned in ascending distance order (with ties broken by RefP for
// determinism).
//
// The implementation iterates the P-tree's leaves and runs a best-first
// nearest-neighbor search on the Q-tree per point; disk accesses on both
// trees are reported in the stats as usual.
//
// SemiClosestPairs is the non-cancellable shim over
// SemiClosestPairsContext.
func SemiClosestPairs(ta, tb *rtree.Tree, opts Options) ([]Pair, Stats, error) {
	return SemiClosestPairsContext(context.Background(), ta, tb, opts)
}

// SemiClosestPairsContext is SemiClosestPairs under a context: the
// per-point callback checks ctx before each nearest-neighbor search (each
// search is many node reads, so no stride gating is needed) and stops the
// leaf iteration with ctx.Err() when it fires.
func SemiClosestPairsContext(ctx context.Context, ta, tb *rtree.Tree, opts Options) ([]Pair, Stats, error) {
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if ta.Len() == 0 || tb.Len() == 0 {
		return nil, Stats{}, ErrEmptyInput
	}
	startA := ta.Pool().Stats()
	startB := tb.Pool().Stats()

	var stats Stats
	out := make([]Pair, 0, ta.Len())
	var innerErr error
	err := ta.All(func(it rtree.Item) bool {
		if cerr := ctx.Err(); cerr != nil {
			innerErr = cerr
			return false
		}
		p := it.Rect.Center()
		nns, err := tb.NearestNeighborsMetric(p, 1, opts.Metric)
		if err == nil && len(nns) == 0 {
			err = rtree.ErrNotFound
		}
		if err != nil {
			innerErr = fmt.Errorf("core: semi-CPQ nearest neighbor for %v: %w", p, err)
			return false
		}
		nn := nns[0]
		stats.PointPairsCompared++
		out = append(out, Pair{
			P:    p,
			Q:    nn.Rect.Center(),
			RefP: it.Ref,
			RefQ: nn.Ref,
			Dist: nn.Dist,
		})
		return true
	})
	if err != nil {
		return nil, Stats{}, err
	}
	if innerErr != nil {
		return nil, Stats{}, innerErr
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RefP < out[j].RefP
	})
	if ta.Pool() == tb.Pool() {
		stats.IOP = ta.Pool().Stats().Sub(startA)
	} else {
		stats.IOP = ta.Pool().Stats().Sub(startA)
		stats.IOQ = tb.Pool().Stats().Sub(startB)
	}
	return out, stats, nil
}

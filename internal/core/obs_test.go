package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// captureTracer records events for assertions; safe for parallel workers.
type captureTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *captureTracer) Event(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// countTracer only counts, for benchmarks (no retention, no IO).
type countTracer struct{ n int64 }

func (c *countTracer) Event(obs.Event) { c.n++ }

// TestDisabledHooksZeroAlloc pins the acceptance criterion that every
// emission helper is free on the disabled path: with a nil span the whole
// hook set performs zero allocations per call.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	j := &join{kheap: newKHeap(2), bound: math.Inf(1), lastT: math.Inf(1)}
	p := nodePair{la: 2, lb: 1, minminSq: 3.5}
	allocs := testing.AllocsPerRun(1000, func() {
		j.traceNodeExpanded(p)
		j.traceBound(obs.SourceKHeap)
		j.traceBoundValue(9, 4, obs.SourceMerge)
		j.traceHighWater(17)
		j.traceSweepPruned(12)
		j.traceGridPruned(7)
		j.traceGridRebucket(21)
		j.traceHeapBatch(4)
		j.traceWorkerSteal(1, 8)
		j.traceQueryEnd(0, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled hook path allocates %v per op, want 0", allocs)
	}
}

// TestTraceEventCompleteness is the trace-replay property test: for every
// algorithm, (a) the number of EvNodeExpanded events equals the
// Stats.NodePairsProcessed counter, and (b) replaying the EvBoundTightened
// events yields a monotone non-increasing bound whose final value, decoded
// with the metric, is exactly the reported K-th distance.
func TestTraceEventCompleteness(t *testing.T) {
	ps := uniformPoints(7100, 400, 0)
	qs := uniformPoints(7200, 350, 0.3)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	for _, alg := range Algorithms() {
		for _, k := range []int{1, 10} {
			opts := DefaultOptions(alg)
			tr := &captureTracer{}
			opts.Tracer = tr
			pairs, stats, err := KClosestPairs(ta, tb, k, opts)
			if err != nil {
				t.Fatalf("%v k=%d: %v", alg, k, err)
			}
			checkTrace(t, alg, k, tr.events, pairs, stats, opts, true)
		}
	}
	// Parallel HEAP: emissions from racing workers are not globally
	// ordered, so only the counting property holds (each worker's CAS
	// tightenings interleave; the bound itself is still monotone, but the
	// event stream's arrival order is not).
	opts := DefaultOptions(Heap)
	opts.Parallelism = 4
	tr := &captureTracer{}
	opts.Tracer = tr
	pairs, stats, err := KClosestPairs(ta, tb, 10, opts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	checkTrace(t, Heap, 10, tr.events, pairs, stats, opts, false)
}

// checkTrace verifies one query's event stream against its Stats and
// results. ordered selects the sequential-only monotone-replay checks.
func checkTrace(t *testing.T, alg Algorithm, k int, events []obs.Event,
	pairs []Pair, stats Stats, opts Options, ordered bool) {
	t.Helper()
	if len(events) < 2 {
		t.Fatalf("%v k=%d: only %d events", alg, k, len(events))
	}
	if events[0].Kind != obs.EvQueryStart {
		t.Fatalf("%v k=%d: first event is %v", alg, k, events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != obs.EvQueryEnd {
		t.Fatalf("%v k=%d: last event is %v", alg, k, last.Kind)
	}
	if last.N != int64(len(pairs)) {
		t.Errorf("%v k=%d: query_end reports %d results, want %d", alg, k, last.N, len(pairs))
	}

	var expanded int64
	bound := math.Inf(1)
	for _, e := range events {
		if e.Span != events[0].Span {
			t.Fatalf("%v k=%d: event %v from foreign span", alg, k, e.Kind)
		}
		switch e.Kind {
		case obs.EvNodeExpanded:
			expanded++
		case obs.EvBoundTightened:
			if ordered {
				if e.Old != bound {
					t.Fatalf("%v k=%d: bound_tightened old=%v, replayed bound is %v", alg, k, e.Old, bound)
				}
				if !(e.New < e.Old) {
					t.Fatalf("%v k=%d: bound_tightened did not decrease: old=%v new=%v", alg, k, e.Old, e.New)
				}
				bound = e.New
			}
		}
	}
	if expanded != stats.NodePairsProcessed {
		t.Errorf("%v k=%d: %d node_expanded events, Stats.NodePairsProcessed=%d",
			alg, k, expanded, stats.NodePairsProcessed)
	}
	if !ordered || len(pairs) < k {
		return
	}
	// The replayed bound must end at the reported K-th distance: the final
	// effective T is the K-heap threshold (the aux bound never undercuts
	// it), and query_end carries the same value.
	kth := opts.Metric.KeyToDist(bound)
	if kth != pairs[len(pairs)-1].Dist {
		t.Errorf("%v k=%d: replayed final bound %v != reported K-th distance %v",
			alg, k, kth, pairs[len(pairs)-1].Dist)
	}
	if last.New != bound {
		t.Errorf("%v k=%d: query_end bound %v != replayed bound %v", alg, k, last.New, bound)
	}
}

// TestQueryMetricsAndSlowLog checks that a traced-and-metered query lands
// in the registry with counters matching its Stats snapshot.
func TestQueryMetricsAndSlowLog(t *testing.T) {
	ps := uniformPoints(7300, 300, 0)
	qs := uniformPoints(7400, 300, 0.2)
	ta := buildTree(t, ps, 256)
	tb := buildTree(t, qs, 256)
	reg := obs.NewMetrics()
	em := obs.NewEngineMetrics(reg)
	slow := obs.NewSlowQueryLog(0, nil) // threshold 0: every query is slow
	opts := DefaultOptions(Heap)
	opts.Metrics = em
	opts.SlowLog = slow
	pairs, stats, err := KClosestPairs(ta, tb, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if em.Queries.Value() != 1 {
		t.Fatalf("queries counter = %d, want 1", em.Queries.Value())
	}
	if em.AccessesTotal.Value() != stats.Accesses() {
		t.Errorf("accesses counter = %d, Stats says %d", em.AccessesTotal.Value(), stats.Accesses())
	}
	if em.ResultDistance.Count() != 1 {
		t.Errorf("result distance histogram count = %d, want 1", em.ResultDistance.Count())
	}
	if got := em.ResultDistance.Sum(); got != pairs[len(pairs)-1].Dist {
		t.Errorf("result distance sum = %v, want %v", got, pairs[len(pairs)-1].Dist)
	}
	if s := slow.Summary(); s == "" {
		t.Errorf("slow log summary empty after a recorded query")
	}
	// Parallel run records worker utilization.
	opts.Parallelism = 4
	if _, _, err := KClosestPairs(ta, tb, 5, opts); err != nil {
		t.Fatal(err)
	}
	if em.WorkerUtilization.Count() != 1 {
		t.Errorf("worker utilization count = %d, want 1", em.WorkerUtilization.Count())
	}
}

// benchQuery runs one HEAP query for the tracing-overhead benchmarks.
func benchQuery(b *testing.B, tracer obs.Tracer) {
	ps := uniformPoints(8100, 2000, 0)
	qs := uniformPoints(8200, 2000, 0.5)
	ta := buildTree(b, ps, 1024)
	tb := buildTree(b, qs, 1024)
	opts := DefaultOptions(Heap)
	opts.Tracer = tracer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KClosestPairs(ta, tb, 10, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTracingDisabled(b *testing.B) { benchQuery(b, nil) }

func BenchmarkQueryTracingEnabled(b *testing.B) { benchQuery(b, &countTracer{}) }

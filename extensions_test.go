package cpq

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/multiway"
)

func TestWithinDistanceFacade(t *testing.T) {
	ps := randomPoints(40, 300, 0)
	qs := randomPoints(41, 300, 0.6)
	p, err := BuildIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const eps = 0.05
	var got []float64
	if _, err := WithinDistance(p, q, eps, func(pr Pair) bool {
		got = append(got, pr.Dist)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, a := range ps {
		for _, b := range qs {
			if d := a.Dist(b); d <= eps {
				want = append(want, d)
			}
		}
	}
	sort.Float64s(got)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestAdviseFacade(t *testing.T) {
	p, err := BuildIndex(randomPoints(42, 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(43, 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	a, err := Advise(p, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Algorithm != SortedDistancesAlgorithm {
		t.Errorf("disjoint advice = %v", a.Algorithm)
	}
	// The advice plugs straight into a query.
	if _, _, err := ClosestPair(p, q, WithAlgorithm(a.Algorithm)); err != nil {
		t.Fatal(err)
	}
}

func TestKClosestTuplesFacade(t *testing.T) {
	sets := [][]Point{
		randomPoints(44, 40, 0),
		randomPoints(45, 40, 0.3),
		randomPoints(46, 40, 0.6),
	}
	var indexes []*Index
	for _, s := range sets {
		idx, err := BuildIndex(s, WithBufferPages(0))
		if err != nil {
			t.Fatal(err)
		}
		defer idx.Close()
		idx.ResetIOStats()
		indexes = append(indexes, idx)
	}
	got, stats, err := KClosestTuples(indexes, 5,
		WithTuplePattern(ChainPattern), WithTupleMetric(Euclidean()))
	if err != nil {
		t.Fatal(err)
	}
	gsets := make([][]geom.Point, len(sets))
	for i := range sets {
		gsets[i] = sets[i]
	}
	want, err := multiway.BruteForce(gsets, 5, multiway.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("tuple %d: dist %g, want %g", i, got[i].Dist, want[i].Dist)
		}
	}
	if stats.Accesses() <= 0 {
		t.Error("no accesses recorded")
	}
	if _, _, err := KClosestTuples(indexes[:1], 5); err == nil {
		t.Error("one index must fail")
	}
}

package cpq_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	cpq "repro"
)

func buildPair(t *testing.T, opts ...cpq.IndexOption) (*cpq.Index, *cpq.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	mk := func(shift float64) *cpq.Index {
		pts := make([]cpq.Point, 500)
		for i := range pts {
			pts[i] = cpq.Point{X: rng.Float64() + shift, Y: rng.Float64()}
		}
		idx, err := cpq.BuildIndex(pts, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	p, q := mk(0), mk(0.4)
	t.Cleanup(func() { p.Close(); q.Close() })
	return p, q
}

// TestMetricsEndpointMatchesStats is the acceptance check for the metrics
// exposition path: after one metered query, the /metrics endpoint of
// ObservabilityMux must report live counters equal to the query's final
// Stats snapshot.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	p, q := buildPair(t, cpq.WithNodeCache(256))
	reg := cpq.NewMetrics()
	em := cpq.NewEngineMetrics(reg)
	srv := httptest.NewServer(cpq.ObservabilityMux(reg, false))
	defer srv.Close()

	pairs, stats, err := cpq.KClosestPairs(p, q, 10, cpq.WithMetrics(em))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := parseSamples(t, string(body))
	want := map[string]float64{
		"cpq_queries_total":           1,
		"cpq_accesses_total":          float64(stats.Accesses()),
		"cpq_node_cache_hits_total":   float64(stats.NodeCacheHits),
		"cpq_node_cache_misses_total": float64(stats.NodeCacheMisses),
		"cpq_node_cache_hit_ratio":    stats.NodeCacheHitRatio(),
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("endpoint is missing %s", name)
			continue
		}
		if g != w {
			t.Errorf("%s = %v on the endpoint, Stats says %v", name, g, w)
		}
	}
	if stats.NodeCacheHits == 0 {
		t.Error("query used no node cache; the cache counters checked nothing")
	}
}

// parseSamples extracts un-labelled samples from a Prometheus text page.
func parseSamples(t *testing.T, page string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// TestIndexSetTracerAndJSONL checks the public wiring end to end: a JSONL
// tracer attached through WithTracer and Index.SetTracer sees both the
// query span and the index's cache events, every line valid JSON.
func TestIndexSetTracerAndJSONL(t *testing.T) {
	p, q := buildPair(t, cpq.WithNodeCache(256))
	var buf bytes.Buffer
	tr := cpq.NewJSONLTracer(&buf)
	p.SetTracer(tr)
	q.SetTracer(tr)
	if _, _, err := cpq.KClosestPairs(p, q, 5, cpq.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e struct {
			Kind string `json:"kind"`
		}
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		kinds[e.Kind]++
	}
	for _, want := range []string{"query_start", "query_end", "node_expanded", "cache_miss", "cache_hit"} {
		if kinds[want] == 0 {
			t.Errorf("no %s events in the JSONL stream (kinds: %v)", want, kinds)
		}
	}
}

// TestSlowQueryLogOption checks the WithSlowQueryLog plumbing: with a zero
// threshold every query is written as a JSON line and aggregated.
func TestSlowQueryLogOption(t *testing.T) {
	p, q := buildPair(t)
	var buf bytes.Buffer
	slow := cpq.NewSlowQueryLog(0, &buf)
	for i := 0; i < 3; i++ {
		if _, _, err := cpq.KClosestPairs(p, q, 4, cpq.WithSlowQueryLog(slow)); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 3 {
		t.Fatalf("slow log wrote %d lines, want 3", lines)
	}
	var rep cpq.QueryReport
	first, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(first), &rep); err != nil {
		t.Fatalf("slow log line is not JSON: %v", err)
	}
	if rep.Results != 4 {
		t.Errorf("report has %d results, want 4", rep.Results)
	}
	if !strings.Contains(slow.Summary(), "3/3") {
		t.Errorf("summary %q does not count 3/3 queries", slow.Summary())
	}
}

// TestSlowQueryLogThreshold checks that a high threshold suppresses the
// JSON lines but keeps aggregating.
func TestSlowQueryLogThreshold(t *testing.T) {
	p, q := buildPair(t)
	var buf bytes.Buffer
	slow := cpq.NewSlowQueryLog(time.Hour, &buf)
	if _, _, err := cpq.ClosestPair(p, q, cpq.WithSlowQueryLog(slow)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("hour-threshold log wrote %q", buf.String())
	}
	if s := slow.Summary(); !strings.Contains(s, "0/1") {
		t.Errorf("summary %q does not show 0/1", s)
	}
}

// Example_observability is the README's curl-able setup in miniature.
func Example_observability() {
	reg := cpq.NewMetrics()
	_ = cpq.NewEngineMetrics(reg)
	srv := httptest.NewServer(cpq.ObservabilityMux(reg, false))
	defer srv.Close()
	resp, _ := srv.Client().Get(srv.URL + "/metrics")
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	fmt.Println(strings.Contains(string(page), "# TYPE cpq_queries_total counter"))
	// Output: true
}

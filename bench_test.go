package cpq

// The benchmarks below regenerate the measurements behind every figure of
// the paper at a reduced scale (5% of the paper's cardinalities by
// default, tunable via CPQ_BENCH_SCALE). Each benchmark reports the
// paper's cost metric — disk accesses per query — as a custom metric next
// to the usual ns/op. cmd/cpqbench runs the same experiments at full scale
// and prints the tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/incremental"
	"repro/internal/rtree"
	"repro/internal/storage"
)

var benchLab = bench.NewLab(benchScale())

func benchScale() float64 {
	if v := os.Getenv("CPQ_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

// benchPair fetches (building on first use, then cached) the tree pair of
// one workload.
func benchPair(b *testing.B, left, right bench.DataSpec, overlap float64) (*rtree.Tree, *rtree.Tree) {
	b.Helper()
	ta, tb, err := benchLab.Pair(left, right, overlap)
	if err != nil {
		b.Fatal(err)
	}
	return ta, tb
}

func uniform(n int) bench.DataSpec {
	return bench.DataSpec{Kind: bench.UniformData, N: n, Seed: int64(n)}
}

func real() bench.DataSpec { return bench.DataSpec{Kind: bench.RealData} }

// runCoreBench is the shared measurement loop: run one configuration b.N
// times and report mean disk accesses.
func runCoreBench(b *testing.B, ta, tb *rtree.Tree, k int, opts core.Options, buffer int) {
	b.Helper()
	var accesses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunCore(ta, tb, k, opts, buffer)
		if err != nil {
			b.Fatal(err)
		}
		accesses += stats.Accesses()
	}
	b.ReportMetric(float64(accesses)/float64(b.N), "accesses")
}

func runIncrementalBench(b *testing.B, ta, tb *rtree.Tree, k int, opts incremental.Options, buffer int) {
	b.Helper()
	var accesses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunIncremental(ta, tb, k, opts, buffer)
		if err != nil {
			b.Fatal(err)
		}
		accesses += stats.Accesses()
	}
	b.ReportMetric(float64(accesses)/float64(b.N), "accesses")
}

// BenchmarkFig2TieStrategies measures the five tie-break strategies in STD
// and HEAP (Figure 2): 1-CPQ on 60K/60K uniform data, 50% overlap, B=0.
func BenchmarkFig2TieStrategies(b *testing.B) {
	ta, tb := benchPair(b, uniform(60000), bench.DataSpec{Kind: bench.UniformData, N: 60000, Seed: 60002}, 0.5)
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		for _, tie := range core.TieStrategies() {
			b.Run(fmt.Sprintf("%v/%v", alg, tie), func(b *testing.B) {
				opts := core.DefaultOptions(alg)
				opts.Tie = tie
				runCoreBench(b, ta, tb, 1, opts, 0)
			})
		}
	}
}

// BenchmarkFig3HeightStrategies measures fix-at-leaves vs fix-at-root on
// trees of different heights (Figure 3): 20K vs 80K uniform, 50% overlap.
func BenchmarkFig3HeightStrategies(b *testing.B) {
	ta, tb := benchPair(b, uniform(20000), uniform(80000), 0.5)
	for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
		for _, hs := range []core.HeightStrategy{core.FixAtLeaves, core.FixAtRoot} {
			b.Run(fmt.Sprintf("%v/%v", alg, hs), func(b *testing.B) {
				opts := core.DefaultOptions(alg)
				opts.Height = hs
				runCoreBench(b, ta, tb, 1, opts, 0)
			})
		}
	}
}

// BenchmarkFig4Algorithms1CP measures the four 1-CP algorithms on real vs
// random data at 0% and 100% overlap (Figure 4).
func BenchmarkFig4Algorithms1CP(b *testing.B) {
	for _, overlap := range []float64{0, 1} {
		ta, tb := benchPair(b, real(), uniform(40000), overlap)
		for _, alg := range []core.Algorithm{core.Exhaustive, core.Simple, core.SortedDistances, core.Heap} {
			b.Run(fmt.Sprintf("overlap=%.0f%%/%v", overlap*100, alg), func(b *testing.B) {
				runCoreBench(b, ta, tb, 1, core.DefaultOptions(alg), 0)
			})
		}
	}
}

// BenchmarkFig5OverlapSweep measures 1-CPQ cost across the overlap axis
// (Figure 5), HEAP vs EXH.
func BenchmarkFig5OverlapSweep(b *testing.B) {
	for _, overlap := range dataset.OverlapSweep() {
		ta, tb := benchPair(b, real(), uniform(40000), overlap)
		for _, alg := range []core.Algorithm{core.Exhaustive, core.Heap} {
			b.Run(fmt.Sprintf("overlap=%.0f%%/%v", overlap*100, alg), func(b *testing.B) {
				runCoreBench(b, ta, tb, 1, core.DefaultOptions(alg), 0)
			})
		}
	}
}

// BenchmarkFig6Buffer measures the LRU-buffer effect on the four 1-CP
// algorithms (Figure 6): real vs 40K uniform, 100% overlap.
func BenchmarkFig6Buffer(b *testing.B) {
	ta, tb := benchPair(b, real(), uniform(40000), 1)
	for _, buf := range []int{0, 4, 16, 64, 256} {
		for _, alg := range []core.Algorithm{core.Exhaustive, core.Simple, core.SortedDistances, core.Heap} {
			b.Run(fmt.Sprintf("B=%d/%v", buf, alg), func(b *testing.B) {
				runCoreBench(b, ta, tb, 1, core.DefaultOptions(alg), buf)
			})
		}
	}
}

// BenchmarkFig7KCP measures the four algorithms across K (Figure 7): real
// vs uniform, 100% overlap, B=0.
func BenchmarkFig7KCP(b *testing.B) {
	ta, tb := benchPair(b, real(), uniform(62536), 1)
	for _, k := range []int{1, 100, 10000} {
		for _, alg := range []core.Algorithm{core.Exhaustive, core.Simple, core.SortedDistances, core.Heap} {
			b.Run(fmt.Sprintf("K=%d/%v", k, alg), func(b *testing.B) {
				runCoreBench(b, ta, tb, k, core.DefaultOptions(alg), 0)
			})
		}
	}
}

// BenchmarkFig8OverlapAndK measures STD and HEAP relative cost drivers
// across the (overlap, K) plane (Figure 8).
func BenchmarkFig8OverlapAndK(b *testing.B) {
	for _, overlap := range []float64{0, 0.25, 1} {
		ta, tb := benchPair(b, real(), uniform(62536), overlap)
		for _, k := range []int{1, 1000} {
			for _, alg := range []core.Algorithm{core.Exhaustive, core.SortedDistances, core.Heap} {
				b.Run(fmt.Sprintf("overlap=%.0f%%/K=%d/%v", overlap*100, k, alg), func(b *testing.B) {
					runCoreBench(b, ta, tb, k, core.DefaultOptions(alg), 0)
				})
			}
		}
	}
}

// BenchmarkFig9BufferAndK measures STD and HEAP across the (buffer, K)
// plane (Figure 9): disjoint workspaces.
func BenchmarkFig9BufferAndK(b *testing.B) {
	ta, tb := benchPair(b, real(), uniform(62536), 0)
	for _, buf := range []int{0, 16, 256} {
		for _, k := range []int{1, 1000} {
			for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
				b.Run(fmt.Sprintf("B=%d/K=%d/%v", buf, k, alg), func(b *testing.B) {
					runCoreBench(b, ta, tb, k, core.DefaultOptions(alg), buf)
				})
			}
		}
	}
}

// BenchmarkFig10Incremental measures the incremental EVN and SML against
// STD and HEAP (Figure 10): real vs uniform, both overlaps, B=0.
func BenchmarkFig10Incremental(b *testing.B) {
	for _, overlap := range []float64{0, 1} {
		ta, tb := benchPair(b, real(), uniform(62536), overlap)
		for _, k := range []int{10, 1000} {
			for _, alg := range []core.Algorithm{core.SortedDistances, core.Heap} {
				b.Run(fmt.Sprintf("overlap=%.0f%%/K=%d/%v", overlap*100, k, alg), func(b *testing.B) {
					runCoreBench(b, ta, tb, k, core.DefaultOptions(alg), 0)
				})
			}
			for _, trav := range []incremental.Traversal{incremental.Even, incremental.Simultaneous} {
				b.Run(fmt.Sprintf("overlap=%.0f%%/K=%d/%v", overlap*100, k, trav), func(b *testing.B) {
					runIncrementalBench(b, ta, tb, k, incremental.Options{Traversal: trav}, 0)
				})
			}
		}
	}
}

// BenchmarkKPruning is the Section 3.8 ablation: the MAXMAXDIST prefix
// rule vs the plain K-heap-top bound.
func BenchmarkKPruning(b *testing.B) {
	ta, tb := benchPair(b, real(), uniform(62536), 1)
	for _, rule := range []core.KPruning{core.KPruneMaxMax, core.KPruneHeapTop} {
		b.Run(rule.String(), func(b *testing.B) {
			opts := core.DefaultOptions(core.Heap)
			opts.KPrune = rule
			runCoreBench(b, ta, tb, 1000, opts, 0)
		})
	}
}

// BenchmarkBuild compares the two index construction paths on the same
// data (the build ablation of DESIGN.md).
func BenchmarkBuild(b *testing.B) {
	pts := dataset.Uniform(99, benchLab.ScaledN(40000))
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Ref: int64(i)}
	}
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := storage.NewBufferPool(storage.NewMemFile(1024), 512)
			tr, err := rtree.New(pool, rtree.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			for j, p := range pts {
				if err := tr.InsertPoint(p, int64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("bulk-str", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := storage.NewBufferPool(storage.NewMemFile(1024), 512)
			tr, err := rtree.New(pool, rtree.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.BulkLoad(items, 0.7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI measures the end-to-end facade: BuildIndex plus a
// K-CPQ through the public API.
func BenchmarkPublicAPI(b *testing.B) {
	pts := dataset.Uniform(123, 5000)
	qts := dataset.Uniform(124, 5000)
	p, err := BuildIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qts)
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KClosestPairs(p, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

package cpq

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Point is a point of the plane.
type Point = geom.Point

// Rect is an axis-aligned rectangle.
type Rect = geom.Rect

// Neighbor is a nearest-neighbor query result.
type Neighbor struct {
	// Point is the data point.
	Point Point
	// Ref is the record id supplied at insertion.
	Ref int64
	// Dist is the distance from the query point.
	Dist float64
}

// IOStats exposes the storage counters of an index's buffer pool. Reads
// are buffer misses — the paper's "disk accesses".
type IOStats = storage.IOStats

// NodeCacheStats exposes the hit/miss counters of an index's decoded-node
// cache (see WithNodeCache).
type NodeCacheStats = rtree.CacheStats

// Index is one spatial data set stored in a disk-based R*-tree behind an
// LRU buffer pool. An Index is not safe for concurrent mutation.
type Index struct {
	tree *rtree.Tree
	pool *storage.BufferPool
	file storage.PageFile
	disk *storage.DiskFile // nil for in-memory indexes
}

type indexConfig struct {
	pageSize       int
	maxEntries     int
	minEntries     int
	bufferPages    int
	bufferShards   int
	nodeCacheNodes int
	path           string
	bulkFill       float64
}

// IndexOption configures NewIndex / BuildIndex / OpenIndex.
type IndexOption func(*indexConfig) error

// WithPageSize sets the page size in bytes (default 1024, the paper's).
func WithPageSize(bytes int) IndexOption {
	return func(c *indexConfig) error {
		if bytes <= 0 {
			return fmt.Errorf("cpq: invalid page size %d", bytes)
		}
		c.pageSize = bytes
		return nil
	}
}

// WithNodeCapacity sets the R*-tree node capacity M and minimum occupancy
// m (defaults 21 and 7, the paper's).
func WithNodeCapacity(max, min int) IndexOption {
	return func(c *indexConfig) error {
		c.maxEntries, c.minEntries = max, min
		return nil
	}
}

// WithBufferPages sets the index's LRU buffer capacity in pages
// (default 128). Zero disables caching so every page read is a disk
// access, the paper's B=0 configuration.
func WithBufferPages(pages int) IndexOption {
	return func(c *indexConfig) error {
		if pages < 0 {
			return fmt.Errorf("cpq: negative buffer size %d", pages)
		}
		c.bufferPages = pages
		return nil
	}
}

// WithBufferShards splits the index's buffer pool into n lock-striped
// shards (default 1). One shard is the paper's exact global LRU; more
// shards let the workers of a parallel query (WithParallelism) read pages
// without serializing on a single mutex, at the cost of per-shard instead
// of global replacement. Counters stay exact either way.
func WithBufferShards(n int) IndexOption {
	return func(c *indexConfig) error {
		if n < 1 {
			return fmt.Errorf("cpq: buffer shards must be >= 1, got %d", n)
		}
		c.bufferShards = n
		return nil
	}
}

// WithNodeCache attaches a decoded-node cache holding up to the given
// number of nodes (0, the default, disables it). A cache hit serves an
// already-decoded, immutable node without touching the buffer pool at all,
// which makes repeated traversals of the upper tree levels (the HEAP
// frontier's habit) much cheaper — but it also means cached reads no
// longer appear in IOStats, so experiments reproducing the paper's
// disk-access figures must leave it off. Cache hit/miss counts are
// reported separately (Stats.NodeCacheHits / NodeCacheMisses and
// Index.NodeCacheStats). The cache is sharded like the buffer pool
// (WithBufferShards) so parallel workers do not serialize on it, and it is
// kept consistent by invalidation on every node write.
func WithNodeCache(nodes int) IndexOption {
	return func(c *indexConfig) error {
		if nodes < 0 {
			return fmt.Errorf("cpq: negative node cache size %d", nodes)
		}
		c.nodeCacheNodes = nodes
		return nil
	}
}

// WithPath stores the index in a file on disk instead of in memory.
func WithPath(path string) IndexOption {
	return func(c *indexConfig) error {
		if path == "" {
			return errors.New("cpq: empty index path")
		}
		c.path = path
		return nil
	}
}

// WithBulkLoad makes BuildIndex pack the tree with the STR algorithm at
// the given fill factor (0 < fill <= 1) instead of inserting one point at
// a time. Packed trees are smaller and have less node overlap.
func WithBulkLoad(fill float64) IndexOption {
	return func(c *indexConfig) error {
		if fill <= 0 || fill > 1 {
			return fmt.Errorf("cpq: bulk fill %g out of (0, 1]", fill)
		}
		c.bulkFill = fill
		return nil
	}
}

func applyOptions(opts []IndexOption) (indexConfig, error) {
	c := indexConfig{pageSize: 1024, bufferPages: 128, bufferShards: 1}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

func (c indexConfig) treeConfig() rtree.Config {
	cfg := rtree.Config{
		PageSize:   c.pageSize,
		MaxEntries: c.maxEntries,
		MinEntries: c.minEntries,
	}
	if c.pageSize == 1024 && c.maxEntries == 0 {
		cfg = rtree.DefaultConfig()
	}
	return cfg
}

// NewIndex creates an empty index.
func NewIndex(opts ...IndexOption) (*Index, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	idx := &Index{}
	if c.path != "" {
		df, err := storage.CreateDiskFile(c.path, c.pageSize)
		if err != nil {
			return nil, err
		}
		idx.file, idx.disk = df, df
	} else {
		idx.file = storage.NewMemFile(c.pageSize)
	}
	idx.pool = storage.NewShardedBufferPool(idx.file, c.bufferPages, c.bufferShards, storage.LRU)
	tree, err := rtree.New(idx.pool, c.treeConfig())
	if err != nil {
		return nil, errors.Join(err, idx.file.Close())
	}
	if c.nodeCacheNodes > 0 {
		tree.SetNodeCache(rtree.NewNodeCache(c.nodeCacheNodes, c.bufferShards))
	}
	idx.tree = tree
	return idx, nil
}

// BuildIndex creates an index over points, using record ids 0..len-1.
// With WithBulkLoad the tree is STR-packed; otherwise points are inserted
// one at a time through the R* insertion algorithm, as the paper built its
// trees.
func BuildIndex(points []Point, opts ...IndexOption) (*Index, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	idx, err := NewIndex(opts...)
	if err != nil {
		return nil, err
	}
	if c.bulkFill > 0 {
		items := make([]rtree.Item, len(points))
		for i, p := range points {
			items[i] = rtree.Item{Rect: p.Rect(), Ref: int64(i)}
		}
		if err := idx.tree.BulkLoad(items, c.bulkFill); err != nil {
			idx.Close()
			return nil, err
		}
		return idx, nil
	}
	for i, p := range points {
		if err := idx.tree.InsertPoint(p, int64(i)); err != nil {
			idx.Close()
			return nil, err
		}
	}
	return idx, nil
}

// OpenIndex reopens an index previously created with WithPath and flushed
// with Flush or Close.
func OpenIndex(path string, opts ...IndexOption) (*Index, error) {
	c, err := applyOptions(append([]IndexOption{WithPath(path)}, opts...))
	if err != nil {
		return nil, err
	}
	df, err := storage.OpenDiskFile(c.path, c.pageSize)
	if err != nil {
		return nil, err
	}
	pool := storage.NewShardedBufferPool(df, c.bufferPages, c.bufferShards, storage.LRU)
	tree, err := rtree.Open(pool)
	if err != nil {
		return nil, errors.Join(err, df.Close())
	}
	if c.nodeCacheNodes > 0 {
		tree.SetNodeCache(rtree.NewNodeCache(c.nodeCacheNodes, c.bufferShards))
	}
	return &Index{tree: tree, pool: pool, file: df, disk: df}, nil
}

// Insert adds a point with a caller-chosen record id.
func (i *Index) Insert(p Point, ref int64) error {
	return i.tree.InsertPoint(p, ref)
}

// Delete removes a previously inserted (point, ref) record.
func (i *Index) Delete(p Point, ref int64) error {
	return i.tree.DeletePoint(p, ref)
}

// Len returns the number of indexed points.
func (i *Index) Len() int64 { return i.tree.Len() }

// Height returns the R*-tree height (number of levels).
func (i *Index) Height() int { return i.tree.Height() }

// Bounds returns the MBR of the indexed points.
func (i *Index) Bounds() (Rect, error) { return i.tree.Bounds() }

// Search visits every point inside query; return false to stop early.
func (i *Index) Search(query Rect, fn func(p Point, ref int64) bool) error {
	return i.tree.Search(query, func(it rtree.Item) bool {
		return fn(it.Rect.Min, it.Ref)
	})
}

// Nearest returns the k indexed points closest to p in ascending distance
// order.
func (i *Index) Nearest(p Point, k int) ([]Neighbor, error) {
	nn, err := i.tree.NearestNeighbors(p, k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nn))
	for t, n := range nn {
		out[t] = Neighbor{Point: n.Rect.Min, Ref: n.Ref, Dist: n.Dist}
	}
	return out, nil
}

// SetBufferPages resizes the index's LRU buffer. The paper's joins give
// each tree half of the total buffer B.
func (i *Index) SetBufferPages(pages int) { i.pool.Resize(pages) }

// DropCaches empties the buffer pool and the decoded-node cache (if one is
// attached), so following reads hit "disk".
func (i *Index) DropCaches() {
	i.pool.Clear()
	if c := i.tree.NodeCache(); c != nil {
		c.Clear()
	}
}

// ResetIOStats zeroes the access counters (including the node-cache
// hit/miss counters when a cache is attached).
func (i *Index) ResetIOStats() {
	i.pool.ResetStats()
	if c := i.tree.NodeCache(); c != nil {
		c.ResetStats()
	}
}

// IOStats returns the index's storage counters since the last reset.
func (i *Index) IOStats() IOStats { return i.pool.Stats() }

// NodeCacheStats returns the decoded-node cache's hit/miss counters since
// the last reset (zero when WithNodeCache was not used).
func (i *Index) NodeCacheStats() NodeCacheStats { return i.tree.NodeCacheStats() }

// SetTracer attaches a tracer to the index's storage layers: the decoded-
// node cache reports cache_hit/cache_miss events and the buffer pool
// reports pool_evict events. Set it before issuing queries and do not
// change it while queries run. A nil tracer (the default) costs nothing.
func (i *Index) SetTracer(tr Tracer) {
	i.tree.SetTracer(tr)
	i.pool.SetTracer(tr)
}

// CheckInvariants validates the underlying tree structure (testing and
// tooling aid).
func (i *Index) CheckInvariants() error { return i.tree.CheckInvariants() }

// Flush persists the tree header; for on-disk indexes it also syncs the
// file.
func (i *Index) Flush() error {
	if err := i.tree.Flush(); err != nil {
		return err
	}
	if i.disk != nil {
		return i.disk.Sync()
	}
	return nil
}

// Close flushes and releases the index.
func (i *Index) Close() error {
	if err := i.Flush(); err != nil {
		return errors.Join(err, i.file.Close())
	}
	return i.file.Close()
}

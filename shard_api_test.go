package cpq

import (
	"math"
	"testing"
)

// TestWithShardsMatchesUnsharded is the facade-level equivalence check:
// the sharded bichromatic queries return bit-identical distances and tie
// order to the monolithic join.
func TestWithShardsMatchesUnsharded(t *testing.T) {
	ptsP := randomPoints(41, 800, 0)
	ptsQ := randomPoints(42, 800, 0)
	p, err := BuildIndex(ptsP)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(ptsQ)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	want, _, err := KClosestPairs(p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		got, _, err := KClosestPairs(p, q, 10, WithShards(shards), WithShardTransport(InProcTransport()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: result length: want %d, got %d", shards, len(want), len(got))
		}
		for i := range want {
			if math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
				t.Fatalf("shards=%d pair %d: distance: want %v, got %v", shards, i, want[i].Dist, got[i].Dist)
			}
			if want[i].RefP != got[i].RefP || want[i].RefQ != got[i].RefQ {
				t.Fatalf("shards=%d pair %d: tie order: want (%d,%d), got (%d,%d)",
					shards, i, want[i].RefP, want[i].RefQ, got[i].RefP, got[i].RefQ)
			}
		}
	}

	wantPair, _, err := ClosestPair(p, q)
	if err != nil {
		t.Fatal(err)
	}
	gotPair, _, err := ClosestPair(p, q, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(wantPair.Dist) != math.Float64bits(gotPair.Dist) ||
		wantPair.RefP != gotPair.RefP || wantPair.RefQ != gotPair.RefQ {
		t.Fatalf("sharded ClosestPair differs: want %+v, got %+v", wantPair, gotPair)
	}
}

// TestWithShardsOneTileIsMonolithic pins that t <= 1 keeps the
// monolithic path (no partitioning cost, identical stats semantics).
func TestWithShardsOneTileIsMonolithic(t *testing.T) {
	p, err := BuildIndex(randomPoints(43, 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(44, 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	want, wantStats, err := KClosestPairs(p, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := KClosestPairs(p, q, 5, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("result length: want %d, got %d", len(want), len(got))
	}
	if wantStats.NodePairsProcessed != gotStats.NodePairsProcessed {
		t.Fatalf("WithShards(1) changed traversal: %d vs %d node pairs",
			wantStats.NodePairsProcessed, gotStats.NodePairsProcessed)
	}
}

package cpq

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func randomPoints(seed int64, n int, dx float64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: dx + rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestBuildIndexAndQuery(t *testing.T) {
	ps := randomPoints(1, 500, 0)
	qs := randomPoints(2, 400, 0.5)
	p, err := BuildIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	pair, stats, err := ClosestPair(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForceKCP(ps, qs, 1)[0]
	if math.Abs(pair.Dist-want.Dist) > 1e-9 {
		t.Fatalf("dist = %g, want %g", pair.Dist, want.Dist)
	}
	if stats.Accesses() < 0 {
		t.Fatal("negative accesses")
	}

	pairs, _, err := KClosestPairs(p, q, 25, WithAlgorithm(SortedDistancesAlgorithm))
	if err != nil {
		t.Fatal(err)
	}
	wantK := core.BruteForceKCP(ps, qs, 25)
	for i := range pairs {
		if math.Abs(pairs[i].Dist-wantK[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %g, want %g", i, pairs[i].Dist, wantK[i].Dist)
		}
	}
}

func TestAllQueryOptionsWork(t *testing.T) {
	p, err := BuildIndex(randomPoints(3, 300, 0), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(randomPoints(4, 300, 0.2), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	want := core.BruteForceKCP(randomPoints(3, 300, 0), randomPoints(4, 300, 0.2), 5)
	for _, opt := range [][]QueryOption{
		{WithAlgorithm(NaiveAlgorithm)},
		{WithAlgorithm(ExhaustiveAlgorithm)},
		{WithAlgorithm(SimpleAlgorithm)},
		{WithAlgorithm(SortedDistancesAlgorithm), WithSortMethod(QuickSort)},
		{WithAlgorithm(SortedDistancesAlgorithm), WithSortMethod(BubbleSort)},
		{WithAlgorithm(HeapAlgorithm), WithTieStrategy(Tie3)},
		{WithAlgorithm(HeapAlgorithm), WithTieStrategy(TieNone)},
		{WithHeightStrategy(FixAtLeaves)},
		{WithKPruning(KPruneHeapTop)},
	} {
		got, _, err := KClosestPairs(p, q, 5, opt...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("option set %v: pair %d dist %g, want %g", opt, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestIndexCRUD(t *testing.T) {
	idx, err := NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	pts := randomPoints(5, 200, 0)
	for i, p := range pts {
		if err := idx.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 200 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Delete(pts[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(pts[0], 0); err == nil {
		t.Fatal("double delete must fail")
	}
	if idx.Len() != 199 {
		t.Fatalf("Len after delete = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	count := 0
	b, err := idx.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Search(b, func(Point, int64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 199 {
		t.Fatalf("Search found %d", count)
	}

	nn, err := idx.Nearest(Point{X: 0.5, Y: 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 {
		t.Fatalf("Nearest returned %d", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatal("Nearest not sorted")
		}
	}
}

func TestOnDiskIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.cpq")
	pts := randomPoints(6, 300, 0)
	idx, err := BuildIndex(pts, WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 300 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	other, err := BuildIndex(randomPoints(7, 300, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	pair, _, err := ClosestPair(re, other)
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForceKCP(pts, randomPoints(7, 300, 0.5), 1)[0]
	if math.Abs(pair.Dist-want.Dist) > 1e-9 {
		t.Fatalf("dist = %g, want %g", pair.Dist, want.Dist)
	}
}

func TestBulkLoadOption(t *testing.T) {
	pts := randomPoints(8, 2000, 0)
	bulk, err := BuildIndex(pts, WithBulkLoad(0.8))
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	if bulk.Len() != 2000 {
		t.Fatalf("Len = %d", bulk.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(pts, WithBulkLoad(1.5)); err == nil {
		t.Fatal("bad fill must be rejected")
	}
}

func TestBufferControls(t *testing.T) {
	ps := randomPoints(9, 2000, 0)
	qs := randomPoints(10, 2000, 0.8)
	p, err := BuildIndex(ps, WithBufferPages(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs, WithBufferPages(0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	p.ResetIOStats()
	q.ResetIOStats()
	_, stats, err := ClosestPair(p, q)
	if err != nil {
		t.Fatal(err)
	}
	cold := stats.Accesses()
	if cold <= 0 {
		t.Fatal("no accesses with zero buffer")
	}
	// Generous buffers must not increase the cost.
	p.SetBufferPages(4096)
	q.SetBufferPages(4096)
	_, stats2, err := ClosestPair(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Accesses() > cold {
		t.Fatalf("buffered cost %d > cold cost %d", stats2.Accesses(), cold)
	}
	// Restoring zero capacity and dropping caches forces a cold start.
	p.SetBufferPages(0)
	q.SetBufferPages(0)
	p.DropCaches()
	q.DropCaches()
	_, stats3, err := ClosestPair(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Accesses() != cold {
		t.Fatalf("post-drop cost %d != cold cost %d", stats3.Accesses(), cold)
	}
}

func TestSelfAndSemiFacade(t *testing.T) {
	pts := randomPoints(11, 400, 0)
	p, err := BuildIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pair, _, err := SelfClosestPair(p)
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForceSelfKCP(pts, 1)[0]
	if math.Abs(pair.Dist-want.Dist) > 1e-9 {
		t.Fatalf("self dist = %g, want %g", pair.Dist, want.Dist)
	}
	kp, _, err := SelfKClosestPairs(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(kp) != 7 {
		t.Fatalf("self k pairs = %d", len(kp))
	}

	qs := randomPoints(12, 300, 0.4)
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	semi, _, err := SemiClosestPairs(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(semi) != len(pts) {
		t.Fatalf("semi pairs = %d, want %d", len(semi), len(pts))
	}
}

func TestIncrementalJoinFacade(t *testing.T) {
	ps := randomPoints(13, 300, 0)
	qs := randomPoints(14, 300, 0.5)
	p, err := BuildIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	it, err := NewIncrementalJoin(p, q,
		WithTraversal(SimultaneousTraversal), WithMaxPairs(20))
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForceKCP(ps, qs, 20)
	for i := 0; i < 20; i++ {
		pair, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("join ended early at %d", i)
		}
		if math.Abs(pair.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %g, want %g", i, pair.Dist, want[i].Dist)
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("join must stop at MaxPairs")
	}
	if it.Stats().Reported != 20 {
		t.Fatalf("reported = %d", it.Stats().Reported)
	}
}

func TestIndexOptionErrors(t *testing.T) {
	if _, err := NewIndex(WithPageSize(-1)); err == nil {
		t.Error("negative page size must fail")
	}
	if _, err := NewIndex(WithBufferPages(-1)); err == nil {
		t.Error("negative buffer must fail")
	}
	if _, err := NewIndex(WithPath("")); err == nil {
		t.Error("empty path must fail")
	}
	if _, err := OpenIndex(filepath.Join(t.TempDir(), "missing.idx")); err == nil {
		t.Error("missing index file must fail")
	}
	empty, err := NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	full, err := BuildIndex(randomPoints(15, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if _, _, err := ClosestPair(empty, full); !errors.Is(err, core.ErrEmptyInput) {
		t.Errorf("empty index query err = %v", err)
	}
}

func TestMetricOptionsFacade(t *testing.T) {
	ps := randomPoints(30, 200, 0)
	qs := randomPoints(31, 200, 0.4)
	p, err := BuildIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	l3, err := Minkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Minkowski(0.2); err == nil {
		t.Fatal("Minkowski(0.2) must fail")
	}
	for _, m := range []Metric{Euclidean(), Manhattan(), Chebyshev(), l3} {
		pair, _, err := ClosestPair(p, q, WithMetric(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Verify against a scan under the same metric.
		best := math.Inf(1)
		for _, a := range ps {
			for _, b := range qs {
				if d := m.Dist(a, b); d < best {
					best = d
				}
			}
		}
		if math.Abs(pair.Dist-best) > 1e-9 {
			t.Fatalf("%v: dist %.12g, want %.12g", m, pair.Dist, best)
		}
		// The incremental join must agree.
		it, err := NewIncrementalJoin(p, q, WithJoinMetric(m), WithMaxPairs(1))
		if err != nil {
			t.Fatal(err)
		}
		ipair, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("%v: incremental: ok=%v err=%v", m, ok, err)
		}
		if math.Abs(ipair.Dist-best) > 1e-9 {
			t.Fatalf("%v: incremental dist %.12g, want %.12g", m, ipair.Dist, best)
		}
	}
}

func TestFacadeMiscAccessors(t *testing.T) {
	idx, err := BuildIndex(randomPoints(50, 400, 0), WithNodeCapacity(10, 4), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Height() < 2 {
		t.Errorf("Height = %d", idx.Height())
	}
	idx.ResetIOStats()
	if _, err := idx.Nearest(Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	st := idx.IOStats()
	if st.Reads+st.Hits <= 0 {
		t.Errorf("IOStats not populated: %+v", st)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Invalid node capacity must be rejected at construction.
	if _, err := BuildIndex(randomPoints(51, 10, 0), WithNodeCapacity(10, 9)); err == nil {
		t.Error("m > M/2 must be rejected")
	}
}

func TestSemiBatchedFacade(t *testing.T) {
	ps := randomPoints(52, 300, 0)
	qs := randomPoints(53, 300, 0.3)
	p, err := BuildIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := BuildIndex(qs)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	a, _, err := SemiClosestPairs(p, q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SemiClosestPairsBatched(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, a[i].Dist, b[i].Dist)
		}
	}
}

// Package cpq is a Go implementation of the closest-pair query algorithms
// of Corral, Manolopoulos, Theodoridis and Vassilakopoulos, "Closest Pair
// Queries in Spatial Databases" (SIGMOD 2000), together with the full
// substrate the paper assumes: a paged storage engine with LRU buffer
// management, a disk-based R*-tree, and the incremental distance-join
// baseline of Hjaltason & Samet (SIGMOD 1998).
//
// The package answers, over two point sets P and Q each indexed by an
// R*-tree:
//
//   - 1-CPQ — the pair (p, q) ∈ P × Q with the smallest distance;
//   - K-CPQ — the K such pairs with the K smallest distances;
//   - self-CPQ — the K closest pairs within a single set;
//   - semi-CPQ — for each p ∈ P its nearest q ∈ Q;
//   - incremental joins — pairs streamed in ascending distance order.
//
// Five algorithms are provided (Naive, Exhaustive, Simple, Sorted
// Distances, Heap) plus the tie-break strategies T1-T5, the fix-at-root /
// fix-at-leaves height treatments, and two K-pruning rules; every option
// of the paper's experimental study is reachable through QueryOption
// values.
//
// # Quick start
//
//	p, _ := cpq.BuildIndex(hotels)          // []cpq.Point
//	q, _ := cpq.BuildIndex(restaurants)
//	pair, stats, _ := cpq.ClosestPair(p, q) // HEAP algorithm by default
//	fmt.Println(pair.P, pair.Q, pair.Dist, stats.Accesses())
//
// Indexes live on fixed-size pages (1 KB with node capacity M=21 by
// default, the paper's setup) behind an LRU buffer pool whose miss counter
// is the paper's "disk accesses" metric. Use WithPath to put an index on
// disk, and OpenIndex to reopen it.
package cpq

package cpq

import (
	"context"

	"errors"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/incremental"
	"repro/internal/obs/explain"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/sortx"
)

// Pair is one closest-pair result.
type Pair = core.Pair

// Stats reports the cost of a query; Stats.Accesses() is the paper's disk
// access count.
type Stats = core.Stats

// Algorithm selects one of the paper's five CPQ algorithms.
type Algorithm = core.Algorithm

// The five algorithms of Section 3.
const (
	// NaiveAlgorithm recurses with no pruning (correctness baseline).
	NaiveAlgorithm = core.Naive
	// ExhaustiveAlgorithm (EXH) prunes on MINMINDIST > T.
	ExhaustiveAlgorithm = core.Exhaustive
	// SimpleAlgorithm (SIM) additionally tightens T via MINMAXDIST.
	SimpleAlgorithm = core.Simple
	// SortedDistancesAlgorithm (STD) additionally sorts candidates by
	// ascending MINMINDIST.
	SortedDistancesAlgorithm = core.SortedDistances
	// HeapAlgorithm (HEAP) is the iterative algorithm on a global
	// min-heap of node pairs. It is the default: the paper found it (with
	// STD) the most robust across configurations.
	HeapAlgorithm = core.Heap
)

// TieStrategy breaks MINMINDIST ties in STD and HEAP (paper Section 3.6).
type TieStrategy = core.TieStrategy

// Tie strategies T1-T5; T1 is the paper's winner and the default.
const (
	TieNone = core.TieNone
	Tie1    = core.Tie1
	Tie2    = core.Tie2
	Tie3    = core.Tie3
	Tie4    = core.Tie4
	Tie5    = core.Tie5
)

// HeightStrategy treats trees of different heights (paper Section 3.7).
type HeightStrategy = core.HeightStrategy

// Height strategies; FixAtRoot is the paper's recommendation and the
// default.
const (
	FixAtRoot   = core.FixAtRoot
	FixAtLeaves = core.FixAtLeaves
)

// SortMethod selects STD's sorting algorithm (paper footnote 2).
type SortMethod = sortx.Method

// The six candidate sorts; MergeSort is the authors' choice and default.
const (
	MergeSort     = sortx.Merge
	QuickSort     = sortx.Quick
	HeapSort      = sortx.Heap
	InsertionSort = sortx.Insertion
	SelectionSort = sortx.Selection
	BubbleSort    = sortx.Bubble
)

// LeafScan selects how leaf pairs are scanned for candidate point pairs.
type LeafScan = core.LeafScan

// Leaf scanning strategies; the plane-sweep scan is the default, the
// brute scan reproduces the paper's original all-pairs CP3, and the grid
// scan hashes leaf points into pruning-distance-sized cells.
const (
	LeafScanSweep = core.LeafScanSweep
	LeafScanBrute = core.LeafScanBrute
	LeafScanGrid  = core.LeafScanGrid
)

// ExpandStrategy selects how node-pair expansion computes sub-pair
// metrics.
type ExpandStrategy = core.ExpandStrategy

// Expansion strategies; the batched flat-array kernel is the default and
// the legacy per-pair path is kept for A/B comparisons.
const (
	ExpandBatched = core.ExpandBatched
	ExpandLegacy  = core.ExpandLegacy
)

// KPruning selects the K>1 pruning bound (paper Section 3.8).
type KPruning = core.KPruning

// K-pruning rules; KPruneMaxMax (the technical report's MAXMAXDIST rule)
// is the default.
const (
	KPruneMaxMax  = core.KPruneMaxMax
	KPruneHeapTop = core.KPruneHeapTop
)

// Metric is a Minkowski (L_p) distance metric. The zero value is the
// Euclidean metric, the paper's default; Section 2.1 notes the methods
// adapt to any Minkowski metric, and this implementation does.
type Metric = geom.Metric

// Euclidean returns the L2 metric (the default).
func Euclidean() Metric { return geom.L2() }

// Manhattan returns the L1 metric.
func Manhattan() Metric { return geom.L1() }

// Chebyshev returns the L-infinity metric.
func Chebyshev() Metric { return geom.LInf() }

// Minkowski returns the L_p metric for p >= 1.
func Minkowski(p float64) (Metric, error) { return geom.Lp(p) }

// queryConfig is the facade-level query configuration: the engine options
// plus the scatter-gather knobs (tile count, transport) that live above
// the engine.
type queryConfig struct {
	core      core.Options
	shards    int
	transport shard.Transport
	capture   *explain.Capture
}

// QueryOption tunes a closest-pair query.
type QueryOption func(*queryConfig)

// WithAlgorithm selects the CPQ algorithm (default HeapAlgorithm).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(o *queryConfig) { o.core.Algorithm = a }
}

// WithTieStrategy selects the tie-break strategy (default Tie1).
func WithTieStrategy(t TieStrategy) QueryOption {
	return func(o *queryConfig) { o.core.Tie = t }
}

// WithHeightStrategy selects the different-heights treatment
// (default FixAtRoot).
func WithHeightStrategy(h HeightStrategy) QueryOption {
	return func(o *queryConfig) { o.core.Height = h }
}

// WithSortMethod selects STD's sorting algorithm (default MergeSort).
func WithSortMethod(m SortMethod) QueryOption {
	return func(o *queryConfig) { o.core.Sort = m }
}

// WithKPruning selects the K>1 pruning rule (default KPruneMaxMax).
func WithKPruning(k KPruning) QueryOption {
	return func(o *queryConfig) { o.core.KPrune = k }
}

// WithLeafScan selects the leaf-pair scanning strategy (default
// LeafScanSweep). All strategies produce the same result set; LeafScanBrute
// evaluates all entry pairs of two leaves (the paper's CP3), LeafScanSweep
// plane-sweeps them and skips pairs whose x distance already exceeds the
// pruning bound, and LeafScanGrid hashes one leaf into a uniform grid with
// cell side equal to the pruning distance and probes only the 3x3
// neighborhood per point (falling back to the sweep when no finite bound
// is available yet). The difference shows up in
// Stats.PointPairsCompared/GridCellsProbed.
func WithLeafScan(l LeafScan) QueryOption {
	return func(o *queryConfig) { o.core.LeafScan = l }
}

// WithExpandStrategy selects the node-expansion kernel (default
// ExpandBatched). Both strategies produce identical sub-pairs, bounds and
// counters; the batched kernel computes all pairwise MINMINDIST values
// over flat scratch arrays in one pass and materialises only survivors,
// while ExpandLegacy keeps the original per-pair path for A/B comparison.
func WithExpandStrategy(e ExpandStrategy) QueryOption {
	return func(o *queryConfig) { o.core.Expand = e }
}

// WithBatchExpand lets the sequential HEAP algorithm dequeue batches of
// near-minimal node pairs per heap operation, amortising sift traffic.
// The result set is unchanged (every batch member is re-checked against
// the pruning bound), but the processing order deviates slightly from
// strict best-first, so disk access counts may differ from the paper's
// sequential HEAP; it is therefore off by default. The parallel engine
// always consumes batches regardless of this option.
func WithBatchExpand(enabled bool) QueryOption {
	return func(o *queryConfig) { o.core.BatchExpand = enabled }
}

// WithMetric selects the distance metric (default Euclidean).
func WithMetric(m Metric) QueryOption {
	return func(o *queryConfig) { o.core.Metric = m }
}

// WithParallelism runs the HEAP algorithm with n worker goroutines over a
// shared frontier with an atomically tightened pruning bound. n = 1 (the
// default) is the paper's sequential algorithm; n <= 0 selects
// runtime.GOMAXPROCS(0). Parallel runs return the same K distances as
// sequential ones (under distance ties the pair set is an equally valid
// instance), but disk access counts — the paper's cost metric — may vary
// slightly from run to run because the traversal order depends on
// goroutine scheduling. The recursive algorithms ignore the knob. Pair
// WithParallelism with WithBufferShards on the indexes so concurrent page
// reads do not serialize on one buffer-pool mutex.
func WithParallelism(n int) QueryOption {
	return func(o *queryConfig) {
		if n <= 0 {
			o.core.Parallelism = core.AutoParallelism
		} else {
			o.core.Parallelism = n
		}
	}
}

// ShardTransport runs the shard-pair joins of a sharded query (see
// WithShards). The in-process transport is the default; a custom
// implementation can carry the same call over a wire protocol to remote
// shard holders. Implementations must be safe for concurrent use.
type ShardTransport = shard.Transport

// InProcTransport returns the in-process shard transport (the default):
// shard-pair joins run as ordinary engine calls in this process.
func InProcTransport() ShardTransport { return shard.InProc{} }

// WithShards runs the bichromatic queries (ClosestPair, KClosestPairs)
// as scatter-gather over t spatial tiles: both point sets are split by
// shared STR-order quantile boundaries, each tile gets its own R-tree
// pair on dedicated buffer pools, tile pairs whose MINMINDIST exceeds
// the current bound are pruned whole, and all in-flight tile joins share
// one broadcast tighten-only bound. Results are bit-identical (distances
// and tie order) to the unsharded query. t <= 1 (the default) keeps the
// monolithic join; the self-, semi- and range variants ignore the knob.
//
// Sharding pays off when tile-level pruning can skip most of the T^2
// tile pairs — clustered data, or K-th distances far below the tile
// side. The partitioning cost (a full re-bulk-load of both sets) is paid
// per query, so the knob targets one-shot large joins, not repeated
// queries over a prebuilt index.
func WithShards(t int) QueryOption {
	return func(o *queryConfig) { o.shards = t }
}

// WithShardTransport selects the transport that carries shard-pair joins
// (default in-process). Only meaningful together with WithShards.
func WithShardTransport(t ShardTransport) QueryOption {
	return func(o *queryConfig) { o.transport = t }
}

func buildConfig(opts []QueryOption) queryConfig {
	c := queryConfig{core: core.DefaultOptions(core.Heap)}
	for _, f := range opts {
		f(&c)
	}
	return c
}

// buildOptions resolves just the engine options, for the query variants
// that never shard.
func buildOptions(opts []QueryOption) core.Options {
	return buildConfig(opts).core
}

// shardedKClosestPairs routes a bichromatic K-CPQ through the
// scatter-gather executor: re-partition both sets into cfg.shards tiles,
// join the tile pairs under a broadcast bound, K-merge. The shard trees
// inherit p's tree geometry so per-shard traversals see the same page
// and fan-out regime as the monolithic join.
func shardedKClosestPairs(ctx context.Context, p, q *Index, k int, cfg queryConfig) ([]Pair, Stats, error) {
	itemsP, err := collectItems(p)
	if err != nil {
		return nil, Stats{}, err
	}
	itemsQ, err := collectItems(q)
	if err != nil {
		return nil, Stats{}, err
	}
	set, err := shard.PartitionContext(ctx, itemsP, itemsQ, shard.Config{
		Tiles:   cfg.shards,
		Tree:    p.tree.Config(),
		Capture: cfg.capture,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	tr := cfg.transport
	if tr == nil {
		tr = shard.InProc{}
	}
	// The tile-bound collection runs only under an explain capture; the
	// nil-capture path must not pay for it (SetPlanShards is nil-safe, but
	// its arguments would still be built).
	if cfg.capture != nil {
		cfg.capture.SetPlanShards(cfg.shards, tr.String(), set.TileBounds())
	}
	ex := shard.Executor{Set: set, Transport: tr, Capture: cfg.capture}
	res, err := ex.RunContext(ctx, k, cfg.core)
	if err != nil {
		return nil, Stats{}, errors.Join(err, set.Close())
	}
	if err := set.Close(); err != nil {
		return nil, Stats{}, err
	}
	return res.Pairs, res.Stats, nil
}

// collectItems drains an index's items for re-partitioning.
func collectItems(i *Index) ([]rtree.Item, error) {
	out := make([]rtree.Item, 0, i.tree.Len())
	err := i.tree.All(func(it rtree.Item) bool {
		out = append(out, it)
		return true
	})
	return out, err
}

// ClosestPair returns the closest pair between the two indexed point sets
// (the paper's 1-CPQ). It is the non-cancellable shim over
// ClosestPairContext.
func ClosestPair(p, q *Index, opts ...QueryOption) (Pair, Stats, error) {
	return ClosestPairContext(context.Background(), p, q, opts...)
}

// ClosestPairContext is ClosestPair under a context: a deadline or cancel
// interrupts the traversal within a bounded number of steps, releases all
// buffer-pool pins, joins all worker goroutines and returns ctx.Err().
// When the context never fires the results, paper counters and disk
// accesses are identical to the context-free call.
func ClosestPairContext(ctx context.Context, p, q *Index, opts ...QueryOption) (Pair, Stats, error) {
	cfg := buildConfig(opts)
	if cfg.capture != nil {
		pairs, stats, err := explainKCPQ(ctx, p, q, 1, cfg)
		if err != nil {
			return Pair{}, stats, err
		}
		return pairs[0], stats, nil
	}
	if cfg.shards > 1 {
		pairs, stats, err := shardedKClosestPairs(ctx, p, q, 1, cfg)
		if err != nil {
			return Pair{}, stats, err
		}
		return pairs[0], stats, nil
	}
	return core.ClosestPairContext(ctx, p.tree, q.tree, cfg.core)
}

// KClosestPairs returns the k closest pairs between the two indexed point
// sets in ascending distance order (the paper's K-CPQ). If fewer than k
// pairs exist, all are returned. It is the non-cancellable shim over
// KClosestPairsContext.
func KClosestPairs(p, q *Index, k int, opts ...QueryOption) ([]Pair, Stats, error) {
	return KClosestPairsContext(context.Background(), p, q, k, opts...)
}

// KClosestPairsContext is KClosestPairs under a context; see
// ClosestPairContext for the cancellation contract.
func KClosestPairsContext(ctx context.Context, p, q *Index, k int, opts ...QueryOption) ([]Pair, Stats, error) {
	cfg := buildConfig(opts)
	if cfg.capture != nil {
		return explainKCPQ(ctx, p, q, k, cfg)
	}
	if cfg.shards > 1 {
		return shardedKClosestPairs(ctx, p, q, k, cfg)
	}
	return core.KClosestPairsContext(ctx, p.tree, q.tree, k, cfg.core)
}

// SelfClosestPair returns the closest pair of distinct points within one
// index (the paper's self-CPQ future-work variant). It is the
// non-cancellable shim over SelfClosestPairContext.
func SelfClosestPair(p *Index, opts ...QueryOption) (Pair, Stats, error) {
	return SelfClosestPairContext(context.Background(), p, opts...)
}

// SelfClosestPairContext is SelfClosestPair under a context; see
// ClosestPairContext for the cancellation contract.
func SelfClosestPairContext(ctx context.Context, p *Index, opts ...QueryOption) (Pair, Stats, error) {
	return core.SelfClosestPairContext(ctx, p.tree, buildOptions(opts))
}

// SelfKClosestPairs returns the k closest unordered pairs of distinct
// points within one index. It is the non-cancellable shim over
// SelfKClosestPairsContext.
func SelfKClosestPairs(p *Index, k int, opts ...QueryOption) ([]Pair, Stats, error) {
	return SelfKClosestPairsContext(context.Background(), p, k, opts...)
}

// SelfKClosestPairsContext is SelfKClosestPairs under a context; see
// ClosestPairContext for the cancellation contract.
func SelfKClosestPairsContext(ctx context.Context, p *Index, k int, opts ...QueryOption) ([]Pair, Stats, error) {
	return core.SelfKClosestPairsContext(ctx, p.tree, k, buildOptions(opts))
}

// SemiClosestPairs returns, for every point of p, its nearest point in q
// (the paper's semi-CPQ future-work variant), sorted by ascending
// distance. It is the non-cancellable shim over SemiClosestPairsContext.
func SemiClosestPairs(p, q *Index, opts ...QueryOption) ([]Pair, Stats, error) {
	return SemiClosestPairsContext(context.Background(), p, q, opts...)
}

// SemiClosestPairsContext is SemiClosestPairs under a context; see
// ClosestPairContext for the cancellation contract.
func SemiClosestPairsContext(ctx context.Context, p, q *Index, opts ...QueryOption) ([]Pair, Stats, error) {
	return core.SemiClosestPairsContext(ctx, p.tree, q.tree, buildOptions(opts))
}

// SemiClosestPairsBatched computes the same result as SemiClosestPairs
// with a batched traversal: one best-first search over q per leaf of p
// serves all of the leaf's points at once, usually at a fraction of the
// disk accesses. It is the non-cancellable shim over
// SemiClosestPairsBatchedContext.
func SemiClosestPairsBatched(p, q *Index, opts ...QueryOption) ([]Pair, Stats, error) {
	return SemiClosestPairsBatchedContext(context.Background(), p, q, opts...)
}

// SemiClosestPairsBatchedContext is SemiClosestPairsBatched under a
// context; see ClosestPairContext for the cancellation contract.
func SemiClosestPairsBatchedContext(ctx context.Context, p, q *Index, opts ...QueryOption) ([]Pair, Stats, error) {
	return core.SemiClosestPairsBatchedContext(ctx, p.tree, q.tree, buildOptions(opts))
}

// Traversal selects the incremental join's expansion policy (Hjaltason &
// Samet).
type Traversal = incremental.Traversal

// The three traversal policies of the incremental baseline.
const (
	BasicTraversal        = incremental.Basic
	EvenTraversal         = incremental.Even
	SimultaneousTraversal = incremental.Simultaneous
)

// JoinStats reports the cost of an incremental join.
type JoinStats = incremental.Stats

// JoinIterator streams closest pairs in ascending distance order.
type JoinIterator struct {
	it *incremental.Iterator
}

// JoinOption tunes an incremental join.
type JoinOption func(*incremental.Options)

// WithTraversal selects the expansion policy (default BasicTraversal).
func WithTraversal(t Traversal) JoinOption {
	return func(o *incremental.Options) { o.Traversal = t }
}

// WithMaxPairs bounds the number of pairs the join will produce, enabling
// the K-bounded queue pruning of the modified algorithm in Hjaltason &
// Samet.
func WithMaxPairs(k int) JoinOption {
	return func(o *incremental.Options) { o.MaxK = k }
}

// WithJoinMetric selects the incremental join's distance metric
// (default Euclidean).
func WithJoinMetric(m Metric) JoinOption {
	return func(o *incremental.Options) { o.Metric = m }
}

// NewIncrementalJoin starts an incremental distance join between the two
// indexes.
func NewIncrementalJoin(p, q *Index, opts ...JoinOption) (*JoinIterator, error) {
	var o incremental.Options
	for _, f := range opts {
		f(&o)
	}
	it, err := incremental.New(p.tree, q.tree, o)
	if err != nil {
		return nil, err
	}
	return &JoinIterator{it: it}, nil
}

// Next returns the next closest pair; ok is false when the join is
// exhausted.
func (j *JoinIterator) Next() (pair Pair, ok bool, err error) {
	return j.it.Next()
}

// Stats returns the join's cost counters so far.
func (j *JoinIterator) Stats() JoinStats { return j.it.Stats() }

#!/bin/sh
# ci.sh — the repository's check suite: formatting, vet, build, the
# repo-specific static analyzer (cpqlint, DESIGN.md §7), the full test
# suite, and the race detector over the whole module (the parallel K-CPQ
# engine and the sharded buffer pool make every package fair game for
# concurrency bugs).
set -eux

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go run ./cmd/cpqlint ./...
go test ./...
go test -race ./...

#!/bin/sh
# ci.sh — the repository's check suite: formatting, vet, build, the
# repo-specific static analyzer (cpqlint, DESIGN.md §7), the analyzer
# turned on itself, the full test suite, and the race detector over the
# whole module (the parallel K-CPQ engine and the sharded buffer pool
# make every package fair game for concurrency bugs).
#
# Usage:
#   ./ci.sh            run every gate
#   ./ci.sh lint       just the analyzer over the module
#                      (alias for `go run ./cmd/cpqlint ./...`,
#                      the single supported lint entry point)
#   ./ci.sh lint-self  the analyzer over its own sources, plus the
#                      fuzz seed-corpus presence check
#   ./ci.sh bench      the perf gates: the hot-path Go benchmarks
#                      (Fig. 4/7, parallel K-CPQ, pair heap) with
#                      -benchmem, then the leafscan ablation, which
#                      fails if the plane-sweep leaf scan evaluates
#                      more point pairs than the brute scan (writes
#                      BENCH_PR4.json), then the pr6 kernel ablation,
#                      which fails if the grid scan + batched kernel
#                      run slower than the legacy sweep baseline or
#                      drift its cost counters (writes BENCH_PR6.json),
#                      then the pr9 sharding gate, which fails if the
#                      sharded scatter-gather run deviates from the
#                      monolithic answer, prunes under 30% of the
#                      planned shard pairs, runs slower than the
#                      monolithic baseline, or processes more node
#                      pairs than it (writes BENCH_PR9.json),
#                      then the ctxflow cancellation gate, which fails
#                      if threading a live (never-cancelled) context
#                      through the PR6-optimized hot path costs more
#                      than 1% wall clock or perturbs any counter,
#                      then the pr10 explain gate, which fails if the
#                      explain-off query path costs more than 1% over
#                      the bare executor or perturbs any counter or
#                      result distance (writes BENCH_PR10.json)
#   ./ci.sh obs        the observability gates: the zero-alloc tests on
#                      the disabled hook paths, the obs registry and
#                      explain capture under the race detector, a
#                      Prometheus-exposition parse smoke test (the fuzz
#                      target over its seed corpus), and the EXPLAIN
#                      golden round-trip with its fuzz corpus
set -eu

lint() {
	# The full pass carries the latency gate: -budget fails the build if
	# any single check runs past 30s, so an interprocedural pass that
	# regresses (the ctxflow summaries, the shareguard fixpoints) shows
	# up here instead of silently stretching every CI run.
	go run ./cmd/cpqlint -timing -budget 30s ./...
	# The cancellation-correctness pass stays a hard gate on its own even
	# if the default check set above is ever trimmed: context must reach
	# every engine entry point, every unbounded loop must poll it, and
	# every spawned goroutine must observe Done or be joined (DESIGN.md §11).
	go run ./cmd/cpqlint -checks ctxflow ./...
	# Likewise the data-race pass (DESIGN.md §12): shared fields of the
	# parallel engine must be mutex-consistent, //lint:guardedby
	# annotations enforced, and post-publication writes synchronized.
	go run ./cmd/cpqlint -checks shareguard ./...
}

# lint_self guards the analyzer's own hygiene: cpqlint must hold its own
# packages to the same invariants it enforces on the engine, and the
# fuzz seed corpora the tier-1 suite replays must not silently vanish
# (an empty corpus dir makes `go test` pass while fuzzing nothing).
lint_self() {
	go run ./cmd/cpqlint internal/lint internal/lint/ssa ./cmd/...
	for corpus in internal/rtree/testdata/fuzz internal/geom/testdata/fuzz internal/obs/testdata/fuzz internal/obs/explain/testdata/fuzz; do
		if [ -z "$(ls "$corpus" 2>/dev/null)" ]; then
			echo "fuzz seed corpus missing or empty: $corpus" >&2
			exit 1
		fi
	done
}

# bench regenerates BENCH_PR4.json and BENCH_PR6.json and enforces the
# perf regression gates: cpqbench -pr4 exits non-zero if the sweep
# evaluates more point pairs than the brute scan on the standard
# uniform workload; cpqbench -pr6 re-measures the BENCH_PR4 sweep
# configuration (sequential HEAP, sweep leaf scan, legacy kernel) as
# its in-process baseline and exits non-zero if the grid scan +
# batched kernel run slower than it, or if they change the paper's
# disk-access / node-pair counters or the result distances. The Go
# benchmarks run once per case (-benchtime 1x) as a smoke pass; rerun
# them with a higher -benchtime for stable timings.
bench() {
	go test -run '^$' -bench 'BenchmarkFig4Algorithms1CP|BenchmarkFig7KCP' -benchtime 1x -benchmem .
	go test -run '^$' -bench 'BenchmarkParallelKCPQ' -benchtime 1x -benchmem ./internal/bench
	go test -run '^$' -bench 'BenchmarkPairHeap' -benchtime 100x -benchmem ./internal/core
	go run ./cmd/cpqbench -experiment leafscan -pr4 BENCH_PR4.json
	go run ./cmd/cpqbench -experiment pr6 -pr6 BENCH_PR6.json
	go run ./cmd/cpqbench -experiment pr9 -pr9 BENCH_PR9.json
	go run ./cmd/cpqbench -experiment ctxflow
	go run ./cmd/cpqbench -experiment pr10 -pr10 BENCH_PR10.json
}

# obs gates the observability layer: hooks must stay free when disabled
# (the AllocsPerRun tests), the registry must be safe under concurrent
# writers and scrapers (-race), the Prometheus text exposition must
# parse (the fuzz target replayed over its committed seed corpus), and
# the EXPLAIN snapshot encoding must stay byte-stable (the golden
# round-trip and its fuzz corpus).
obs() {
	go test -race ./internal/obs
	go test -race ./internal/obs/explain
	go test -run 'TestDisabledHooksZeroAlloc' ./internal/core
	go test -run 'TestCacheTraceDisabledZeroAlloc' ./internal/rtree
	go test -run 'TestNilCaptureZeroAlloc' ./internal/obs/explain
	go test -run 'TestShardDisabledHooksZeroAlloc' ./internal/shard
	go test -run 'FuzzMetricsExposition' ./internal/obs
	go test -run 'TestExplainGoldenRoundTrip|FuzzExplainRoundTrip' ./internal/obs/explain
}

all() {
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" "$unformatted" >&2
		exit 1
	fi
	go vet ./...
	go build ./...
	lint
	lint_self
	obs
	go test ./...
	go test -race ./...
}

set -x
case "${1:-all}" in
all) all ;;
lint) lint ;;
lint-self) lint_self ;;
bench) bench ;;
obs) obs ;;
*)
	echo "usage: $0 [all|lint|lint-self|bench|obs]" >&2
	exit 2
	;;
esac

package cpq

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/multiway"
	"repro/internal/rtree"
)

// This file exposes the extensions beyond the paper's core contribution:
// the distance range join (the classic join K-CPQ generalizes), the
// multi-way closest-tuples query of the paper's future-work item (a), and
// the query-optimizer advisor encoding the paper's experimental
// guidelines.

// WithinDistance streams every pair (p, q) with dist(p, q) <= eps to fn in
// no particular order; fn may return false to stop. It uses the paper's
// MINMINDIST pruning with the fixed bound eps. It is the non-cancellable
// shim over WithinDistanceContext.
func WithinDistance(p, q *Index, eps float64, fn func(Pair) bool, opts ...QueryOption) (Stats, error) {
	return WithinDistanceContext(context.Background(), p, q, eps, fn, opts...)
}

// WithinDistanceContext is WithinDistance under a context; see
// ClosestPairContext for the cancellation contract.
func WithinDistanceContext(ctx context.Context, p, q *Index, eps float64, fn func(Pair) bool, opts ...QueryOption) (Stats, error) {
	return core.WithinDistanceContext(ctx, p.tree, q.tree, eps, buildOptions(opts), fn)
}

// Advice is a recommended query plan, per the paper's guidelines.
type Advice = core.Advice

// Advise recommends the algorithm for a closest-pair query over the two
// indexes given the buffer budget (total pages for the query), following
// the guidelines of the paper's Sections 4.4 and 5.3: STD for disjoint or
// barely overlapping workspaces and for buffered queries, HEAP for
// overlapping workspaces with little or no buffer.
func Advise(p, q *Index, bufferPages int) (Advice, error) {
	return core.Advise(p.tree, q.tree, bufferPages)
}

// AdviseLeafScan recommends the leaf-pair scanning strategy (see
// WithLeafScan) for a K-closest-pair query over the two indexes, using the
// analytical cost model in internal/costmodel: the ratio of the expected
// pruning distance to the expected leaf extent decides between the grid,
// the plane sweep and the brute scan. The returned string explains the
// choice.
func AdviseLeafScan(p, q *Index, k int) (LeafScan, string, error) {
	return core.AdviseLeafScan(p.tree, q.tree, k)
}

// TuplePattern shapes the combined distance of a multi-way query.
type TuplePattern = multiway.Pattern

// Multi-way query patterns.
const (
	// ChainPattern scores consecutive legs: dist(p1,p2) + ... +
	// dist(pD-1, pD).
	ChainPattern = multiway.Chain
	// RingPattern additionally closes the loop with dist(pD, p1).
	RingPattern = multiway.Ring
)

// Tuple is a multi-way result: one point per index plus the combined
// distance.
type Tuple = multiway.Tuple

// TupleStats reports the cost of a multi-way query.
type TupleStats = multiway.Stats

// TupleOption tunes a multi-way query.
type TupleOption func(*multiway.Options)

// WithTuplePattern selects the query pattern (default ChainPattern).
func WithTuplePattern(p TuplePattern) TupleOption {
	return func(o *multiway.Options) { o.Pattern = p }
}

// WithTupleMetric selects the distance metric (default Euclidean).
func WithTupleMetric(m Metric) TupleOption {
	return func(o *multiway.Options) { o.Metric = m }
}

// KClosestTuples finds the k closest tuples across two or more indexes —
// one point from each — under the selected pattern (the multi-way CPQ of
// the paper's future-work section, extending multi-way spatial joins).
func KClosestTuples(indexes []*Index, k int, opts ...TupleOption) ([]Tuple, TupleStats, error) {
	if len(indexes) < 2 {
		return nil, TupleStats{}, fmt.Errorf("cpq: need at least 2 indexes, got %d", len(indexes))
	}
	var o multiway.Options
	for _, f := range opts {
		f(&o)
	}
	trees := make([]*rtree.Tree, len(indexes))
	for i, idx := range indexes {
		trees[i] = idx.tree
	}
	return multiway.KClosestTuples(trees, k, o)
}

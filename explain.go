package cpq

import (
	"context"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/explain"
)

// ExplainReport is one query's EXPLAIN/ANALYZE snapshot: the plan
// (algorithm, advisor decisions with their costmodel inputs, shard layout,
// transport) and the execution (phase wall breakdown, per-shard-pair
// dispatch decisions, bound-tightening trajectory, span tree, full work
// counters). Render draws it as a text tree; JSON emits the canonical
// byte-stable form.
type ExplainReport = explain.Explain

// ExplainCapture collects one query's explain data. Pass it to queries
// with WithExplain, or use the Explain/ExplainContext convenience calls
// which manage one internally. A nil capture is free: every capture point
// in the engine costs one pointer comparison and allocates nothing.
type ExplainCapture = explain.Capture

// ExplainSpan is one span of the query's trace in the explain snapshot;
// wire shard transports return forests of these for the gather side to
// merge (see ShardTransport).
type ExplainSpan = explain.SpanNode

// TraceContext identifies a span's position in a distributed trace (trace
// id + span id) — the value that crosses the ShardTransport boundary so
// remote shard joins correlate with the gather-side query span.
type TraceContext = obs.TraceContext

// NewExplainCapture returns an empty explain capture. tee, when non-nil,
// receives every trace event the capture sees, so an existing tracer
// keeps working while explain is on.
func NewExplainCapture(tee Tracer) *ExplainCapture { return explain.New(tee) }

// WithExplain attaches an explain capture to the query: the capture
// becomes the query's tracer (an existing WithTracer is teed through),
// the plan and per-phase/per-shard execution rows are recorded, and a
// slow-query log attached to the same query embeds the full snapshot in
// its JSON line. Call capture.Snapshot() after the query for the report.
func WithExplain(c *ExplainCapture) QueryOption {
	return func(o *queryConfig) { o.capture = c }
}

// Explain runs KClosestPairs with an explain capture attached and returns
// the results together with the EXPLAIN/ANALYZE report. It is the
// non-cancellable shim over ExplainContext.
func Explain(p, q *Index, k int, opts ...QueryOption) ([]Pair, Stats, *ExplainReport, error) {
	return ExplainContext(context.Background(), p, q, k, opts...)
}

// ExplainContext is Explain under a context; see ClosestPairContext for
// the cancellation contract. The returned report covers the whole query:
// for sharded runs the plan carries the tile boundaries and transport,
// the execution carries one row per planned shard pair, and the span tree
// correlates every shard join — local or remote — under the query's
// trace id.
func ExplainContext(ctx context.Context, p, q *Index, k int, opts ...QueryOption) ([]Pair, Stats, *ExplainReport, error) {
	c := NewExplainCapture(nil)
	pairs, stats, err := KClosestPairsContext(ctx, p, q, k, append(append([]QueryOption{}, opts...), WithExplain(c))...)
	if err != nil {
		return nil, stats, nil, err
	}
	return pairs, stats, c.Snapshot(), nil
}

// explainKCPQ is the explain-enabled K-CPQ runner: it wires the capture
// in as the query's tracer (teeing any user tracer), records the plan
// with the advisor's decisions, routes the query (sharded or not), and
// feeds the finished snapshot to the slow-query log.
func explainKCPQ(ctx context.Context, p, q *Index, k int, cfg queryConfig) ([]Pair, Stats, error) {
	started := time.Now()
	cap := cfg.capture
	cap.SetTee(cfg.core.Tracer)
	cfg.core.Tracer = cap

	// The slow-query log is recorded here, not in the engine, so the
	// entry can embed the explain snapshot.
	slowLog := cfg.core.SlowLog
	cfg.core.SlowLog = nil

	cap.SetPlan(buildExplainPlan(p, q, k, cfg))

	var pairs []Pair
	var stats Stats
	var err error
	if cfg.shards > 1 {
		pairs, stats, err = shardedKClosestPairs(ctx, p, q, k, cfg)
	} else {
		var phaseStart time.Time
		if cap.Enabled() {
			phaseStart = time.Now()
		}
		pairs, stats, err = core.KClosestPairsContext(ctx, p.tree, q.tree, k, cfg.core)
		cap.Phase("join", time.Since(phaseStart).Nanoseconds())
	}
	seconds := time.Since(started)
	if err != nil {
		if slowLog != nil {
			slowLog.Record(QueryReport{Label: core.QueryLabel(cfg.core, k),
				Seconds: seconds.Seconds(), Workers: explainWorkers(cfg.core), Err: err.Error()})
		}
		return nil, stats, err
	}

	kth := 0.0
	if len(pairs) > 0 {
		kth = pairs[len(pairs)-1].Dist
	}
	cap.SetResult(seconds.Nanoseconds(), stats.ExplainStats(), len(pairs), kth)

	if slowLog != nil {
		r := QueryReport{
			Label:       core.QueryLabel(cfg.core, k),
			Seconds:     seconds.Seconds(),
			Accesses:    stats.Accesses(),
			NodePairs:   stats.NodePairsProcessed,
			PointPairs:  stats.PointPairsCompared,
			CacheHits:   stats.NodeCacheHits,
			CacheMisses: stats.NodeCacheMisses,
			Results:     len(pairs),
			KthDistance: kth,
			Workers:     explainWorkers(cfg.core),
		}
		// Embed the snapshot so an over-threshold line carries the full
		// plan and execution breakdown of the outlier.
		if raw, jerr := cap.Snapshot().JSON(); jerr == nil {
			r.Explain = raw
		}
		slowLog.Record(r)
	}
	return pairs, stats, nil
}

// buildExplainPlan renders the query plan: the resolved options plus the
// advisor's leaf-scan and shard recommendations with the costmodel inputs
// that produced them (computed here, off the hot path — explain is on).
func buildExplainPlan(p, q *Index, k int, cfg queryConfig) explain.Plan {
	plan := explain.Plan{
		Label:     core.QueryLabel(cfg.core, k),
		Algorithm: cfg.core.Algorithm.String(),
		K:         k,
		Workers:   explainWorkers(cfg.core),
		LeafScan:  cfg.core.LeafScan.String(),
		Expand:    cfg.core.Expand.String(),
	}
	if _, dec, err := core.AdviseLeafScanDecision(p.tree, q.tree, k); err == nil {
		plan.Decisions = append(plan.Decisions, dec)
	}
	// The shard plan (count, transport, tile boundaries) is filled by the
	// sharded runner once the partitioner has built the tiles.
	return plan
}

// explainWorkers resolves the Parallelism knob the way the engine does.
func explainWorkers(o core.Options) int {
	switch {
	case o.Parallelism == core.AutoParallelism:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism <= 1:
		return 1
	default:
		return o.Parallelism
	}
}
